// Mempool admission semantics: FIFO order, count/byte caps, duplicate-hash
// rejection, drop accounting, and exactly-once commit matching with the
// recently-committed replay ring.
#include <gtest/gtest.h>

#include <string>

#include "client/mempool.hpp"

namespace dl::client {
namespace {

Bytes tx(const std::string& s) { return bytes_of(s); }

TEST(Mempool, FifoOrderAndPopTracking) {
  Mempool mp;
  EXPECT_EQ(mp.admit(tx("a"), 1.0, 7, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(tx("b"), 1.1, 7, 2), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(tx("c"), 1.2, 8, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.pending_txs(), 3u);
  EXPECT_EQ(mp.pending_bytes(), 3u);
  EXPECT_EQ(mp.tracked_txs(), 3u);

  EXPECT_EQ(to_string(ByteView(*mp.pop())), "a");
  EXPECT_EQ(to_string(ByteView(*mp.pop())), "b");
  EXPECT_EQ(to_string(ByteView(*mp.pop())), "c");
  EXPECT_FALSE(mp.pop().has_value());
  // Popped transactions stay tracked (in flight) until committed.
  EXPECT_EQ(mp.pending_txs(), 0u);
  EXPECT_EQ(mp.tracked_txs(), 3u);
}

TEST(Mempool, DuplicateRejectedWhilePendingOrInFlight) {
  Mempool mp;
  EXPECT_EQ(mp.admit(tx("dup"), 1.0, 1, 1), AdmitResult::Admitted);
  // Pending duplicate.
  EXPECT_EQ(mp.admit(tx("dup"), 1.1, 2, 9), AdmitResult::Duplicate);
  // In-flight duplicate (popped but not committed).
  ASSERT_TRUE(mp.pop().has_value());
  EXPECT_EQ(mp.admit(tx("dup"), 1.2, 3, 5), AdmitResult::Duplicate);
  EXPECT_EQ(mp.stats().dropped_duplicate, 2u);
  EXPECT_EQ(mp.stats().admitted, 1u);
}

TEST(Mempool, CountCapWithDropAccounting) {
  MempoolOptions opt;
  opt.max_pending_txs = 2;
  Mempool mp(opt);
  EXPECT_EQ(mp.admit(tx("1"), 0, 1, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(tx("2"), 0, 1, 2), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(tx("3"), 0, 1, 3), AdmitResult::Full);
  EXPECT_EQ(mp.stats().dropped_full, 1u);
  EXPECT_EQ(mp.stats().dropped_full_bytes, 1u);
  // Popping frees a pending slot (the cap is on the queue, not in-flight).
  ASSERT_TRUE(mp.pop().has_value());
  EXPECT_EQ(mp.admit(tx("3"), 0, 1, 3), AdmitResult::Admitted);
}

TEST(Mempool, ResubmitsDecidedBeforeCapacity) {
  // A reconnecting client resubmits while the pool is full: the verdict
  // must be Duplicate/Committed (non-terminal), never Full — a Full ack
  // makes the client forget a transaction that still commits.
  MempoolOptions opt;
  opt.max_pending_txs = 1;
  Mempool mp(opt);
  EXPECT_EQ(mp.admit(tx("inflight"), 0, 1, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(tx("other"), 0, 1, 2), AdmitResult::Full);
  EXPECT_EQ(mp.admit(tx("inflight"), 0, 1, 1), AdmitResult::Duplicate);
  ASSERT_TRUE(mp.pop().has_value());
  ASSERT_TRUE(mp.match_commit(sha256(tx("inflight")), 2, 0, 1.0).has_value());
  EXPECT_EQ(mp.admit(tx("filler"), 0, 1, 3), AdmitResult::Admitted);  // full again
  EXPECT_EQ(mp.admit(tx("inflight"), 0, 1, 1), AdmitResult::Committed);
}

TEST(Mempool, ByteCapWithDropAccounting) {
  MempoolOptions opt;
  opt.max_pending_bytes = 10;
  Mempool mp(opt);
  EXPECT_EQ(mp.admit(Bytes(6, 0x11), 0, 1, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(Bytes(6, 0x22), 0, 1, 2), AdmitResult::Full);
  EXPECT_EQ(mp.stats().dropped_full_bytes, 6u);
  EXPECT_EQ(mp.admit(Bytes(4, 0x33), 0, 1, 3), AdmitResult::Admitted);
  EXPECT_EQ(mp.pending_bytes(), 10u);
}

TEST(Mempool, OversizeRejected) {
  MempoolOptions opt;
  opt.max_tx_bytes = 8;
  Mempool mp(opt);
  EXPECT_EQ(mp.admit(Bytes(9, 0), 0, 1, 1), AdmitResult::TooLarge);
  EXPECT_EQ(mp.stats().dropped_oversize, 1u);
  EXPECT_EQ(mp.admit(Bytes(8, 0), 0, 1, 2), AdmitResult::Admitted);
}

TEST(Mempool, CommitMatchingIsExactlyOnceWithLatency) {
  Mempool mp;
  const Bytes payload = tx("commit-me");
  EXPECT_EQ(mp.admit(payload, 2.0, 42, 17), AdmitResult::Admitted);
  ASSERT_TRUE(mp.pop().has_value());

  const Hash h = sha256(payload);
  auto rec = mp.match_commit(h, 5, 3, 2.25);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->client_nonce, 42u);
  EXPECT_EQ(rec->client_seq, 17u);
  EXPECT_EQ(rec->epoch, 5u);
  EXPECT_EQ(rec->proposer, 3u);
  EXPECT_EQ(rec->latency_us, 250'000u);
  EXPECT_EQ(mp.tracked_txs(), 0u);
  EXPECT_EQ(mp.stats().committed, 1u);

  // Second sighting of the same hash: not ours anymore.
  EXPECT_FALSE(mp.match_commit(h, 6, 0, 2.5).has_value());
  // Foreign hash: never ours.
  EXPECT_FALSE(mp.match_commit(sha256(tx("other")), 5, 0, 2.5).has_value());
}

TEST(Mempool, ResubmitAfterCommitIsReplayedNotReadmitted) {
  Mempool mp;
  const Bytes payload = tx("replayed");
  EXPECT_EQ(mp.admit(payload, 1.0, 9, 4), AdmitResult::Admitted);
  ASSERT_TRUE(mp.pop().has_value());
  ASSERT_TRUE(mp.match_commit(sha256(payload), 11, 2, 1.5).has_value());

  // The client resubmits (it lost the notification): the pool must answer
  // Committed and expose the stored record — never commit twice.
  Hash h;
  EXPECT_EQ(mp.admit(payload, 2.0, 9, 4, &h), AdmitResult::Committed);
  EXPECT_EQ(mp.stats().committed_replays, 1u);
  auto rec = mp.committed_record(h);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->epoch, 11u);
  EXPECT_EQ(rec->client_seq, 4u);
  EXPECT_EQ(mp.pending_txs(), 0u);
}

TEST(Mempool, CommitOfStillPendingPayloadDropsQueueSlot) {
  // The same payload committed via another node's block while still queued
  // here: the pending copy must leave the FIFO so it is not packed again.
  Mempool mp;
  const Bytes payload = tx("raced");
  EXPECT_EQ(mp.admit(tx("first"), 0, 1, 1), AdmitResult::Admitted);
  EXPECT_EQ(mp.admit(payload, 0, 1, 2), AdmitResult::Admitted);
  ASSERT_TRUE(mp.match_commit(sha256(payload), 3, 1, 1.0).has_value());
  EXPECT_EQ(mp.pending_txs(), 1u);
  EXPECT_EQ(to_string(ByteView(*mp.pop())), "first");
  EXPECT_FALSE(mp.pop().has_value());
}

TEST(Mempool, CommittedRingEvictsOldestRecords) {
  MempoolOptions opt;
  opt.committed_ring = 2;
  Mempool mp(opt);
  Bytes p1 = tx("r1"), p2 = tx("r2"), p3 = tx("r3");
  for (const Bytes* p : {&p1, &p2, &p3}) {
    ASSERT_EQ(mp.admit(*p, 0, 1, 1), AdmitResult::Admitted);
    ASSERT_TRUE(mp.pop().has_value());
    ASSERT_TRUE(mp.match_commit(sha256(*p), 1, 0, 1.0).has_value());
  }
  // r1 was evicted by r3; r2 and r3 still replay.
  EXPECT_EQ(mp.admit(p1, 0, 1, 1), AdmitResult::Admitted);  // forgotten
  EXPECT_EQ(mp.admit(p2, 0, 1, 2), AdmitResult::Committed);
  EXPECT_EQ(mp.admit(p3, 0, 1, 3), AdmitResult::Committed);
}

}  // namespace
}  // namespace dl::client
