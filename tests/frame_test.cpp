// Frame codec: length-prefixed streaming deframer + wire-message codec.
// Byzantine peers control every byte of the stream, so the properties under
// test are strictness ones: oversized declarations poison the reader before
// the body is buffered, truncations never yield a frame, and garbage wire
// kinds are rejected.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/frame.hpp"

namespace dl::net {
namespace {

Bytes frame_of(ByteView payload) {
  Bytes out;
  EXPECT_TRUE(append_frame(out, payload));
  return out;
}

TEST(Frame, RoundTripSingle) {
  const Bytes payload = random_bytes(1000, 1);
  const Bytes stream = frame_of(payload);
  ASSERT_EQ(stream.size(), payload.size() + kFrameHeaderBytes);

  FrameReader r;
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(r.next(got));
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Frame, ByteAtATime) {
  const Bytes payload = random_bytes(257, 2);
  const Bytes stream = frame_of(payload);
  FrameReader r;
  Bytes got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_FALSE(r.next(got)) << "frame complete too early at byte " << i;
    ASSERT_TRUE(r.feed(ByteView(&stream[i], 1)));
  }
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
}

TEST(Frame, ManyFramesOneFeed) {
  Bytes stream;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    payloads.push_back(random_bytes(static_cast<std::size_t>(i * 13 % 200), 10 + static_cast<std::uint64_t>(i)));
    append_frame(stream, payloads.back());
  }
  FrameReader r;
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  for (const Bytes& want : payloads) {
    ASSERT_TRUE(r.next(got));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(r.next(got));
}

TEST(Frame, EmptyPayloadIsAValidFrame) {
  FrameReader r;
  ASSERT_TRUE(r.feed(frame_of({})));
  Bytes got{0xFF};
  ASSERT_TRUE(r.next(got));
  EXPECT_TRUE(got.empty());
}

TEST(Frame, OversizedDeclarationPoisonsBeforeBody) {
  // Header declares max+1: the reader must fail on feed, without waiting
  // for (or buffering) the body.
  FrameReader r(/*max_frame=*/1024);
  Bytes evil;
  append_frame(evil, random_bytes(2048, 3), /*max_frame=*/4096);
  EXPECT_FALSE(r.feed(evil));
  EXPECT_TRUE(r.failed());
  Bytes got;
  EXPECT_FALSE(r.next(got));
  // Poisoned stays poisoned.
  EXPECT_FALSE(r.feed(frame_of(random_bytes(8, 4))));
  r.reset();
  EXPECT_FALSE(r.failed());
  ASSERT_TRUE(r.feed(frame_of(random_bytes(8, 4))));
  EXPECT_TRUE(r.next(got));
}

TEST(Frame, ExactLimitAccepted) {
  FrameReader r(/*max_frame=*/512);
  const Bytes payload = random_bytes(512, 5);
  Bytes stream;
  ASSERT_TRUE(append_frame(stream, payload, 512));
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
}

TEST(Frame, AppendFrameRejectsOversizedPayload) {
  Bytes out;
  EXPECT_FALSE(append_frame(out, random_bytes(100, 6), /*max_frame=*/99));
  EXPECT_TRUE(out.empty());
}

TEST(Frame, OversizedSecondFrameCaughtAtItsHeader) {
  FrameReader r(/*max_frame=*/1024);
  Bytes stream = frame_of(random_bytes(10, 7));
  append_frame(stream, random_bytes(2000, 8), /*max_frame=*/4096);
  // feed succeeds (head frame is fine) but the poisoned length is detected
  // once the first frame is consumed.
  r.feed(stream);
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_FALSE(r.next(got));
  EXPECT_TRUE(r.failed());
}

TEST(Wire, HelloRoundTrip) {
  const Bytes frame = encode_hello(3);
  FrameReader r;
  ASSERT_TRUE(r.feed(frame));
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  WireFrame wf;
  ASSERT_TRUE(decode_wire(payload, wf));
  EXPECT_EQ(wf.kind, WireKind::Hello);
  EXPECT_EQ(wf.hello_node, 3u);
}

TEST(Wire, HelloRejectsBadMagicVersionLength) {
  Bytes frame = encode_hello(3);
  WireFrame wf;
  {
    Bytes p(frame.begin() + kFrameHeaderBytes, frame.end());
    Bytes bad = p;
    bad[1] ^= 1;  // magic
    EXPECT_FALSE(decode_wire(bad, wf));
    bad = p;
    bad[5] ^= 1;  // version
    EXPECT_FALSE(decode_wire(bad, wf));
    bad = p;
    bad.push_back(0);  // trailing byte
    EXPECT_FALSE(decode_wire(bad, wf));
    bad.assign(p.begin(), p.end() - 1);  // truncated
    EXPECT_FALSE(decode_wire(bad, wf));
  }
}

TEST(Wire, DataPayloadView) {
  const Bytes env_bytes = random_bytes(77, 9);
  const Bytes frame = encode_data_frame(env_bytes);
  ASSERT_EQ(frame.size(), env_bytes.size() + kDataPayloadOffset);
  FrameReader r;
  r.feed(frame);
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  WireFrame wf;
  ASSERT_TRUE(decode_wire(payload, wf));
  EXPECT_EQ(wf.kind, WireKind::Data);
  EXPECT_TRUE(equal(wf.data, env_bytes));
}

TEST(Frame, NextViewIsZeroCopyAndDrainResets) {
  Bytes stream;
  const Bytes a = random_bytes(100, 21);
  const Bytes b = random_bytes(200, 22);
  append_frame(stream, a);
  append_frame(stream, b);
  FrameReader r;
  ASSERT_TRUE(r.feed(stream));

  ByteView v;
  ASSERT_TRUE(r.next_view(v));
  EXPECT_TRUE(equal(v, a));
  ASSERT_TRUE(r.next_view(v));
  EXPECT_TRUE(equal(v, b));
  // The view stays valid until the next feed/fill/reset even though the
  // reader just drained fully (it only rewinds its cursors).
  EXPECT_TRUE(equal(v, b));
  EXPECT_EQ(r.buffered_bytes(), 0u);
  EXPECT_FALSE(r.next_view(v));
}

TEST(Frame, FillFromReadsSocketsDirectly) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Bytes stream;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(random_bytes(500 + static_cast<std::size_t>(i) * 37,
                                    30 + static_cast<std::uint64_t>(i)));
    append_frame(stream, payloads.back());
  }
  // Write in two chunks so one frame straddles a fill_from boundary.
  const std::size_t half = stream.size() / 2;
  ASSERT_EQ(::send(fds[1], stream.data(), half, 0),
            static_cast<ssize_t>(half));

  FrameReader r;
  ASSERT_GT(r.fill_from(fds[0]), 0);
  std::size_t seen = 0;
  Bytes got;
  while (r.next(got)) EXPECT_EQ(got, payloads[seen++]);

  ASSERT_EQ(::send(fds[1], stream.data() + half, stream.size() - half, 0),
            static_cast<ssize_t>(stream.size() - half));
  ::close(fds[1]);
  while (seen < payloads.size()) {
    const ssize_t n = r.fill_from(fds[0]);
    ASSERT_GT(n, 0);
    while (r.next(got)) EXPECT_EQ(got, payloads[seen++]);
  }
  EXPECT_EQ(r.fill_from(fds[0]), 0);  // orderly EOF
  ::close(fds[0]);
}

TEST(Frame, FillFromRefusesPoisonedReader) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FrameReader r(/*max_frame=*/64);
  Bytes evil;
  append_frame(evil, random_bytes(100, 40), /*max_frame=*/4096);
  EXPECT_FALSE(r.feed(evil));
  errno = 0;
  EXPECT_EQ(r.fill_from(fds[0]), -1);
  EXPECT_EQ(errno, EPROTO);
  ::close(fds[0]);
  ::close(fds[1]);
}

// The in-place client-plane encoders must be byte-identical to the
// Bytes-returning ones they replaced on the gateway hot path.
TEST(Wire, InPlaceEncodersMatchByteForByte) {
  auto rope_bytes = [](const ByteRope& rope) {
    iovec iov[8];
    const std::size_t cnt = rope.fill_iovecs(iov, 8);
    Bytes out;
    for (std::size_t i = 0; i < cnt; ++i) {
      const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
      out.insert(out.end(), base, base + iov[i].iov_len);
    }
    return out;
  };

  ByteRope rope;
  encode_tx_ack_into(rope, 0x1122334455667788u, TxStatus::Accepted);
  EXPECT_EQ(rope_bytes(rope),
            encode_tx_ack(0x1122334455667788u, TxStatus::Accepted));
  EXPECT_EQ(rope.size(), kTxAckFrameBytes);

  rope.clear();
  StageLatencies stages{1, 2, 3, 4, 5};
  encode_tx_committed_into(rope, 7, 1234, 3, 987654, stages);
  EXPECT_EQ(rope_bytes(rope), encode_tx_committed(7, 1234, 3, 987654, stages));
  EXPECT_EQ(rope.size(), kTxCommittedFrameBytes);

  rope.clear();
  encode_goodbye_into(rope);
  EXPECT_EQ(rope_bytes(rope), encode_goodbye());
  EXPECT_EQ(rope.size(), kGoodbyeFrameBytes);
}

// The scatter-gather seam: header-slab bytes + raw body must equal the
// classic contiguous Data frame.
TEST(Wire, DataFrameHeaderMatchesContiguousEncoding) {
  Envelope env;
  env.kind = static_cast<MsgKind>(3);
  env.epoch = 0xDEADBEEFCAFEBABEu;
  env.instance = 17;
  env.body = random_bytes(333, 50);

  std::uint8_t header[kDataFrameHeaderBytes];
  ASSERT_EQ(encode_data_frame_header(env, header), kDataFrameHeaderBytes);
  Bytes gathered(header, header + kDataFrameHeaderBytes);
  gathered.insert(gathered.end(), env.body.begin(), env.body.end());

  EXPECT_EQ(gathered, encode_data_frame(env.encode()));
}

TEST(Wire, RejectsUnknownKindAndEmpty) {
  WireFrame wf;
  EXPECT_FALSE(decode_wire({}, wf));
  const Bytes junk{0x7F, 1, 2, 3};
  EXPECT_FALSE(decode_wire(junk, wf));
  const Bytes zero{0x00};
  EXPECT_FALSE(decode_wire(zero, wf));
}

}  // namespace
}  // namespace dl::net
