// Frame codec: length-prefixed streaming deframer + wire-message codec.
// Byzantine peers control every byte of the stream, so the properties under
// test are strictness ones: oversized declarations poison the reader before
// the body is buffered, truncations never yield a frame, and garbage wire
// kinds are rejected.
#include <gtest/gtest.h>

#include "net/frame.hpp"

namespace dl::net {
namespace {

Bytes frame_of(ByteView payload) {
  Bytes out;
  EXPECT_TRUE(append_frame(out, payload));
  return out;
}

TEST(Frame, RoundTripSingle) {
  const Bytes payload = random_bytes(1000, 1);
  const Bytes stream = frame_of(payload);
  ASSERT_EQ(stream.size(), payload.size() + kFrameHeaderBytes);

  FrameReader r;
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(r.next(got));
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

TEST(Frame, ByteAtATime) {
  const Bytes payload = random_bytes(257, 2);
  const Bytes stream = frame_of(payload);
  FrameReader r;
  Bytes got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_FALSE(r.next(got)) << "frame complete too early at byte " << i;
    ASSERT_TRUE(r.feed(ByteView(&stream[i], 1)));
  }
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
}

TEST(Frame, ManyFramesOneFeed) {
  Bytes stream;
  std::vector<Bytes> payloads;
  for (int i = 0; i < 50; ++i) {
    payloads.push_back(random_bytes(static_cast<std::size_t>(i * 13 % 200), 10 + static_cast<std::uint64_t>(i)));
    append_frame(stream, payloads.back());
  }
  FrameReader r;
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  for (const Bytes& want : payloads) {
    ASSERT_TRUE(r.next(got));
    EXPECT_EQ(got, want);
  }
  EXPECT_FALSE(r.next(got));
}

TEST(Frame, EmptyPayloadIsAValidFrame) {
  FrameReader r;
  ASSERT_TRUE(r.feed(frame_of({})));
  Bytes got{0xFF};
  ASSERT_TRUE(r.next(got));
  EXPECT_TRUE(got.empty());
}

TEST(Frame, OversizedDeclarationPoisonsBeforeBody) {
  // Header declares max+1: the reader must fail on feed, without waiting
  // for (or buffering) the body.
  FrameReader r(/*max_frame=*/1024);
  Bytes evil;
  append_frame(evil, random_bytes(2048, 3), /*max_frame=*/4096);
  EXPECT_FALSE(r.feed(evil));
  EXPECT_TRUE(r.failed());
  Bytes got;
  EXPECT_FALSE(r.next(got));
  // Poisoned stays poisoned.
  EXPECT_FALSE(r.feed(frame_of(random_bytes(8, 4))));
  r.reset();
  EXPECT_FALSE(r.failed());
  ASSERT_TRUE(r.feed(frame_of(random_bytes(8, 4))));
  EXPECT_TRUE(r.next(got));
}

TEST(Frame, ExactLimitAccepted) {
  FrameReader r(/*max_frame=*/512);
  const Bytes payload = random_bytes(512, 5);
  Bytes stream;
  ASSERT_TRUE(append_frame(stream, payload, 512));
  ASSERT_TRUE(r.feed(stream));
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_EQ(got, payload);
}

TEST(Frame, AppendFrameRejectsOversizedPayload) {
  Bytes out;
  EXPECT_FALSE(append_frame(out, random_bytes(100, 6), /*max_frame=*/99));
  EXPECT_TRUE(out.empty());
}

TEST(Frame, OversizedSecondFrameCaughtAtItsHeader) {
  FrameReader r(/*max_frame=*/1024);
  Bytes stream = frame_of(random_bytes(10, 7));
  append_frame(stream, random_bytes(2000, 8), /*max_frame=*/4096);
  // feed succeeds (head frame is fine) but the poisoned length is detected
  // once the first frame is consumed.
  r.feed(stream);
  Bytes got;
  ASSERT_TRUE(r.next(got));
  EXPECT_FALSE(r.next(got));
  EXPECT_TRUE(r.failed());
}

TEST(Wire, HelloRoundTrip) {
  const Bytes frame = encode_hello(3);
  FrameReader r;
  ASSERT_TRUE(r.feed(frame));
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  WireFrame wf;
  ASSERT_TRUE(decode_wire(payload, wf));
  EXPECT_EQ(wf.kind, WireKind::Hello);
  EXPECT_EQ(wf.hello_node, 3u);
}

TEST(Wire, HelloRejectsBadMagicVersionLength) {
  Bytes frame = encode_hello(3);
  WireFrame wf;
  {
    Bytes p(frame.begin() + kFrameHeaderBytes, frame.end());
    Bytes bad = p;
    bad[1] ^= 1;  // magic
    EXPECT_FALSE(decode_wire(bad, wf));
    bad = p;
    bad[5] ^= 1;  // version
    EXPECT_FALSE(decode_wire(bad, wf));
    bad = p;
    bad.push_back(0);  // trailing byte
    EXPECT_FALSE(decode_wire(bad, wf));
    bad.assign(p.begin(), p.end() - 1);  // truncated
    EXPECT_FALSE(decode_wire(bad, wf));
  }
}

TEST(Wire, DataPayloadView) {
  const Bytes env_bytes = random_bytes(77, 9);
  const Bytes frame = encode_data_frame(env_bytes);
  ASSERT_EQ(frame.size(), env_bytes.size() + kDataPayloadOffset);
  FrameReader r;
  r.feed(frame);
  Bytes payload;
  ASSERT_TRUE(r.next(payload));
  WireFrame wf;
  ASSERT_TRUE(decode_wire(payload, wf));
  EXPECT_EQ(wf.kind, WireKind::Data);
  EXPECT_TRUE(equal(wf.data, env_bytes));
}

TEST(Wire, RejectsUnknownKindAndEmpty) {
  WireFrame wf;
  EXPECT_FALSE(decode_wire({}, wf));
  const Bytes junk{0x7F, 1, 2, 3};
  EXPECT_FALSE(decode_wire(junk, wf));
  const Bytes zero{0x00};
  EXPECT_FALSE(decode_wire(zero, wf));
}

}  // namespace
}  // namespace dl::net
