// LinkShaper: token-bucket conformance against the closed-form reference
// (sent(T) <= burst + integral of rate over [0,T], and a greedy drain stays
// within one quantum of it), schedule-edge behavior, jitter bounds, loss
// accounting, and a real socketpair goodput check. The shaper runs on an
// explicit clock, so everything except the socketpair test uses virtual
// time and is exact.
#include <gtest/gtest.h>
#include <unistd.h>

#include <sys/socket.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "net/shaper.hpp"

namespace dl::net {
namespace {

double mono_now() {
  using clk = std::chrono::steady_clock;
  return std::chrono::duration<double>(clk::now().time_since_epoch()).count();
}

TEST(RateSchedule, MirrorsSimTraceSemantics) {
  RateSchedule s{{1000.0, 250.0, 4000.0}, 2.0};
  EXPECT_DOUBLE_EQ(s.rate_at(-1.0), 1000.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.999), 1000.0);
  EXPECT_DOUBLE_EQ(s.rate_at(2.0), 250.0);
  EXPECT_DOUBLE_EQ(s.rate_at(4.0), 4000.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1e9), 4000.0);  // last entry holds forever
  EXPECT_DOUBLE_EQ(s.next_change_after(0.0), 2.0);
  EXPECT_DOUBLE_EQ(s.next_change_after(2.0), 4.0);
  EXPECT_TRUE(std::isinf(s.next_change_after(4.0)));
  EXPECT_DOUBLE_EQ(s.mean_rate(), (1000.0 + 250.0 + 4000.0) / 3.0);
  // The sim::Trace floor applies to degenerate entries.
  RateSchedule tiny{{0.5}, 1.0};
  EXPECT_DOUBLE_EQ(tiny.rate_at(0.0), RateSchedule::kMinRate);
}

// Closed-form conformance: replay the same probe times against a reference
// token bucket (tokens' = min(burst, tokens + rate*dt)) and require the
// shaper's grants to match it byte for byte; cumulative grants must also
// respect the classic arrival-curve bound granted(t) <= burst + rate*t.
TEST(LinkShaper, TokenBucketConformance) {
  constexpr double kRate = 50'000.0;
  constexpr std::size_t kBurst = 8192;
  LinkShaper::Config cfg;
  cfg.schedule = {{kRate}, 1.0};
  cfg.burst_bytes = kBurst;
  LinkShaper sh(cfg, /*now=*/0.0);

  double ref_tokens = static_cast<double>(kBurst);  // bucket starts full
  double ref_prev = 0.0;
  double granted = 0;
  // Irregular probe times, including bursts of calls at the same instant
  // and gaps long enough to overflow (and cap) the bucket.
  const double times[] = {0.0,  0.01, 0.01, 0.05, 0.2, 0.2,  0.21,
                          0.5,  0.9,  1.3,  1.31, 2.0, 2.75, 3.0};
  for (double t : times) {
    ref_tokens = std::min(static_cast<double>(kBurst),
                          ref_tokens + kRate * (t - ref_prev));
    ref_prev = t;
    const std::size_t want = 1u << 20;
    const std::size_t expect =
        ref_tokens >= static_cast<double>(std::min(want, sh.quantum()))
            ? static_cast<std::size_t>(ref_tokens)
            : 0;
    const std::size_t got = sh.take(t, want);
    EXPECT_EQ(got, expect) << "at t=" << t;
    ref_tokens -= static_cast<double>(got);
    granted += static_cast<double>(got);
    EXPECT_LE(granted, static_cast<double>(kBurst) + kRate * t + 1e-6)
        << "at t=" << t;
  }
  // The probes drained everything the schedule ever granted.
  EXPECT_EQ(sh.stats().shaped_bytes, static_cast<std::uint64_t>(granted));
}

// A rate step mid-burst: the refill integrates each schedule segment at its
// own rate, exactly — no smearing across the boundary.
TEST(LinkShaper, ScheduleStepMidBurst) {
  LinkShaper::Config cfg;
  cfg.schedule = {{100'000.0, 10'000.0}, 1.0};  // step down at t=1
  cfg.burst_bytes = 1u << 20;                   // never the binding cap here
  LinkShaper sh(cfg, 0.0);
  // Drain the initial burst so the bucket is empty at t=0.
  EXPECT_EQ(sh.take(0.0, 1u << 21), 1u << 20);
  // 1.0s at 100k plus 0.5s at 10k.
  EXPECT_EQ(sh.take(1.5, 1u << 21), 105'000u);
  EXPECT_EQ(sh.take(1.5, 1u << 21), 0u);  // and nothing left behind
}

// next_release integrates across a rate boundary too: a deficit that the
// pre-step rate cannot cover is finished at the post-step rate.
TEST(LinkShaper, NextReleaseCrossesScheduleBoundary) {
  LinkShaper::Config cfg;
  cfg.schedule = {{1000.0, 100'000.0}, 1.0};
  cfg.burst_bytes = 2048;
  LinkShaper sh(cfg, 0.0);
  EXPECT_EQ(sh.take(0.0, 1u << 20), 2048u);  // drain the initial burst
  EXPECT_EQ(sh.take(0.9, 1u << 20), 0u);     // 900 tokens < 1024 quantum
  // Deficit is 1024 - 900 = 124 bytes: 0.1s at 1000 B/s yields 100, the
  // remaining 24 arrive at 100k B/s.
  const double t = sh.next_release(0.9);
  EXPECT_NEAR(t, 1.0 + 24.0 / 100'000.0, 1e-9);
  EXPECT_GT(sh.take(t + 1e-6, 1u << 20), 0u);
  EXPECT_EQ(sh.stats().throttle_waits, 1u);
}

TEST(LinkShaper, RefundRestoresTokens) {
  LinkShaper::Config cfg;
  cfg.schedule = {{1000.0}, 1.0};
  cfg.burst_bytes = 4096;
  LinkShaper sh(cfg, 0.0);
  EXPECT_EQ(sh.take(0.0, 4096), 4096u);
  EXPECT_EQ(sh.take(0.0, 4096), 0u);
  sh.refund(3000);  // EAGAIN: granted bytes never reached the wire
  EXPECT_EQ(sh.take(0.0, 4096), 3000u);
  EXPECT_EQ(sh.stats().shaped_bytes, 4096u);  // net of the refund
}

TEST(LinkShaper, UnlimitedRateOnlyDelays) {
  LinkShaper::Config cfg;  // empty schedule
  cfg.delay = 0.02;
  LinkShaper sh(cfg, 0.0);
  EXPECT_TRUE(sh.unlimited_rate());
  EXPECT_EQ(sh.take(0.0, 123456), 123456u);
  EXPECT_DOUBLE_EQ(sh.next_release(5.0), 5.0);
  EXPECT_DOUBLE_EQ(sh.delay_draw(), 0.02);
}

TEST(LinkShaper, JitterBounds) {
  LinkShaper::Config cfg;
  cfg.delay = 0.020;
  cfg.jitter = 0.005;
  cfg.seed = 7;
  LinkShaper sh(cfg, 0.0);
  double lo = 1e9, hi = -1e9;
  for (int i = 0; i < 2000; ++i) {
    const double d = sh.delay_draw();
    ASSERT_GE(d, 0.020);
    ASSERT_LT(d, 0.025);
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  // The draws actually spread over the jitter window.
  EXPECT_LT(lo, 0.021);
  EXPECT_GT(hi, 0.024);
}

TEST(LinkShaper, LossAccounting) {
  LinkShaper::Config cfg;
  cfg.loss = 0.25;
  cfg.seed = 42;
  LinkShaper sh(cfg, 0.0);
  std::uint64_t dropped = 0;
  constexpr int kFrames = 10'000;
  for (int i = 0; i < kFrames; ++i) {
    if (sh.lose_frame(100)) ++dropped;
  }
  const auto st = sh.stats();
  EXPECT_EQ(st.lost_frames, dropped);
  EXPECT_EQ(st.lost_bytes, dropped * 100);
  EXPECT_GT(dropped, kFrames / 5);      // 20%
  EXPECT_LT(dropped, 3 * kFrames / 10); // 30%
  // Same seed, same drop sequence — deterministic injection.
  LinkShaper sh2(cfg, 0.0);
  std::uint64_t dropped2 = 0;
  for (int i = 0; i < kFrames; ++i) {
    if (sh2.lose_frame(100)) ++dropped2;
  }
  EXPECT_EQ(dropped, dropped2);
}

TEST(RateListParse, AcceptsAndRejects) {
  std::string err;
  auto ok = parse_rate_list("400000, 100000 ,250.5", &err);
  ASSERT_TRUE(ok.has_value());
  ASSERT_EQ(ok->size(), 3u);
  EXPECT_DOUBLE_EQ((*ok)[2], 250.5);

  EXPECT_FALSE(parse_rate_list("", &err).has_value());
  EXPECT_FALSE(parse_rate_list("100,,200", &err).has_value());
  EXPECT_FALSE(parse_rate_list("100,-5", &err).has_value());   // negative
  EXPECT_FALSE(parse_rate_list("100,0", &err).has_value());    // zero
  EXPECT_FALSE(parse_rate_list("100,abc", &err).has_value());
  EXPECT_FALSE(parse_rate_list("1e99", &err).has_value());     // absurd
  EXPECT_FALSE(parse_rate_list("nan", &err).has_value());
  EXPECT_FALSE(parse_rate_list("inf", &err).has_value());
}

TEST(RateTraceFile, LoadsAndReportsLineNumbers) {
  const std::string path = "/tmp/dl_shaper_trace_test.trace";
  {
    std::ofstream f(path);
    f << "# fig08-style two-level trace\n"
      << "step_ms 500\n"
      << "\n"
      << "400000\n"
      << "100000\n";
  }
  std::string err;
  auto tr = load_rate_trace(path, &err);
  ASSERT_TRUE(tr.has_value()) << err;
  EXPECT_DOUBLE_EQ(tr->step, 0.5);
  ASSERT_EQ(tr->rates.size(), 2u);
  EXPECT_DOUBLE_EQ(tr->rates[0], 400'000.0);

  {
    std::ofstream f(path);
    f << "400000\nbogus\n";
  }
  EXPECT_FALSE(load_rate_trace(path, &err).has_value());
  EXPECT_NE(err.find(":2:"), std::string::npos) << err;  // line-numbered

  {
    std::ofstream f(path);
    f << "400000\nstep_ms 100\n";  // directive after rates
  }
  EXPECT_FALSE(load_rate_trace(path, &err).has_value());

  EXPECT_FALSE(load_rate_trace("/nonexistent/x.trace", &err).has_value());
  std::remove(path.c_str());
}

// Real-time goodput: pace writes through a socketpair at 400 kB/s for half
// a second and require the observed rate within 10% of configured. The
// bucket's initial burst is kept small so it cannot mask pacing errors.
TEST(LinkShaper, SocketpairGoodputWithinTenPercent) {
  constexpr double kRate = 400'000.0;
  LinkShaper::Config cfg;
  cfg.schedule = {{kRate}, 1.0};
  cfg.burst_bytes = 4096;
  LinkShaper sh(cfg, mono_now());

  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK, 0, sv), 0);
  char buf[8192];
  std::size_t written = 0;
  std::size_t read_back = 0;
  const double t_start = mono_now();
  const double t_end = t_start + 0.5;
  while (mono_now() < t_end) {
    const double now = mono_now();
    std::size_t budget = sh.take(now, sizeof buf);
    while (budget > 0) {
      const ssize_t n = ::write(sv[0], buf, std::min(budget, sizeof buf));
      if (n <= 0) break;  // kernel buffer full; drain below frees it
      written += static_cast<std::size_t>(n);
      budget -= static_cast<std::size_t>(n);
    }
    if (budget > 0) sh.refund(budget);
    ssize_t r;
    while ((r = ::read(sv[1], buf, sizeof buf)) > 0) {
      read_back += static_cast<std::size_t>(r);
    }
    const double wake = sh.next_release(mono_now());
    const double sleep_s = wake - mono_now();
    if (sleep_s > 0) {
      usleep(static_cast<useconds_t>(std::min(sleep_s, 0.01) * 1e6));
    }
  }
  const double elapsed = mono_now() - t_start;
  const double observed = static_cast<double>(written) / elapsed;
  EXPECT_GT(observed, 0.90 * kRate)
      << "wrote " << written << " in " << elapsed << "s";
  EXPECT_LT(observed, 1.10 * kRate)
      << "wrote " << written << " in " << elapsed << "s";
  EXPECT_GE(read_back, written - sizeof buf);
  close(sv[0]);
  close(sv[1]);
}

}  // namespace
}  // namespace dl::net
