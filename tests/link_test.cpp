// FluidLink: serialization times, FIFO within class, weighted sharing
// between classes, per-epoch ordering in the Low class, trace changes,
// cancellation, byte accounting.
#include <gtest/gtest.h>

#include "sim/link.hpp"

namespace dl::sim {
namespace {

Message make_msg(std::size_t payload, Priority cls = Priority::High,
                 std::uint64_t order = 0, std::uint64_t tag = 0) {
  Message m;
  m.cls = cls;
  m.order = order;
  m.tag = tag;
  m.payload = std::make_shared<Bytes>(payload, 0x55);
  return m;
}

struct Capture {
  std::vector<std::pair<Time, Message>> done;
  FluidLink::DoneFn fn(EventQueue& eq) {
    return [this, &eq](Message&& m) { done.emplace_back(eq.now(), std::move(m)); };
  }
};

TEST(FluidLink, SingleMessageSerializationTime) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead));  // wire = 1000 B
  eq.run();
  ASSERT_EQ(cap.done.size(), 1u);
  EXPECT_NEAR(cap.done[0].first, 1.0, 1e-9);
}

TEST(FluidLink, FifoWithinClass) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  for (int i = 0; i < 3; ++i) {
    auto m = make_msg(1000 - Message::kHeaderOverhead);
    m.tag = static_cast<std::uint64_t>(i + 1);
    link.enqueue(std::move(m));
  }
  eq.run();
  ASSERT_EQ(cap.done.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(cap.done[static_cast<std::size_t>(i)].first, i + 1.0, 1e-9);
    EXPECT_EQ(cap.done[static_cast<std::size_t>(i)].second.tag,
              static_cast<std::uint64_t>(i + 1));
  }
}

TEST(FluidLink, WeightedSharingBetweenClasses) {
  // weight 3: High gets 3/4 of the rate, Low 1/4, while both are busy.
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 3.0, cap.fn(eq));
  auto high = make_msg(1500 - Message::kHeaderOverhead, Priority::High);
  high.tag = 1;
  auto low = make_msg(1500 - Message::kHeaderOverhead, Priority::Low);
  low.tag = 2;
  link.enqueue(std::move(high));
  link.enqueue(std::move(low));
  eq.run();
  ASSERT_EQ(cap.done.size(), 2u);
  // High: 1500 B at 750 B/s -> t=2. Low then: 1500 - 2*250 = 1000 B left
  // at full 1000 B/s -> t=3.
  EXPECT_EQ(cap.done[0].second.tag, 1u);
  EXPECT_NEAR(cap.done[0].first, 2.0, 1e-6);
  EXPECT_EQ(cap.done[1].second.tag, 2u);
  EXPECT_NEAR(cap.done[1].first, 3.0, 1e-6);
}

TEST(FluidLink, LowClassOrderedByEpoch) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  // Enqueue epochs 5, 3, 4. Epoch 5 starts serving immediately; 3 and 4
  // queue and must come out in epoch order.
  for (std::uint64_t e : {5u, 3u, 4u}) {
    auto m = make_msg(1000 - Message::kHeaderOverhead, Priority::Low, e);
    m.tag = e;
    link.enqueue(std::move(m));
  }
  eq.run();
  ASSERT_EQ(cap.done.size(), 3u);
  EXPECT_EQ(cap.done[0].second.tag, 5u);  // already in service
  EXPECT_EQ(cap.done[1].second.tag, 3u);
  EXPECT_EQ(cap.done[2].second.tag, 4u);
}

TEST(FluidLink, TraceRateChangeMidMessage) {
  EventQueue eq;
  Capture cap;
  // 1000 B/s for 1 s, then 500 B/s.
  FluidLink link(eq, Trace({1000.0, 500.0}, 1.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(1500 - Message::kHeaderOverhead));
  eq.run();
  ASSERT_EQ(cap.done.size(), 1u);
  // 1000 B in the first second, remaining 500 B at 500 B/s -> t=2.
  EXPECT_NEAR(cap.done[0].first, 2.0, 1e-6);
}

TEST(FluidLink, CancelRemovesQueuedLowMessages) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  auto first = make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 0, 7);
  link.enqueue(std::move(first));  // starts serving immediately
  auto queued = make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 1, 7);
  link.enqueue(std::move(queued));
  const std::size_t removed = link.cancel(7);
  EXPECT_EQ(removed, 1000u);  // only the queued one
  eq.run();
  ASSERT_EQ(cap.done.size(), 1u);  // in-service message still completes
  EXPECT_NEAR(cap.done[0].first, 1.0, 1e-9);
}

TEST(FluidLink, CancelZeroTagIsNoop) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(100, Priority::Low, 0, 0));
  EXPECT_EQ(link.cancel(0), 0u);
}

TEST(FluidLink, ServedBytesAccounting) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1e6), 30.0, cap.fn(eq));
  link.enqueue(make_msg(936, Priority::High));   // wire 1000
  link.enqueue(make_msg(1936, Priority::Low));   // wire 2000
  eq.run();
  EXPECT_EQ(link.served_bytes(Priority::High), 1000u);
  EXPECT_EQ(link.served_bytes(Priority::Low), 2000u);
  EXPECT_EQ(link.backlog_bytes(), 0u);
}

TEST(FluidLink, BacklogTracking) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(936, Priority::High));
  link.enqueue(make_msg(936, Priority::Low));
  EXPECT_EQ(link.backlog_bytes(), 2000u);
  EXPECT_EQ(link.backlog_bytes(Priority::High), 1000u);
  EXPECT_EQ(link.backlog_bytes(Priority::Low), 1000u);
  eq.run();
  EXPECT_EQ(link.backlog_bytes(), 0u);
}

TEST(FluidLink, HighAloneGetsFullRate) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(2000 - Message::kHeaderOverhead, Priority::Low));
  eq.run();
  ASSERT_EQ(cap.done.size(), 1u);
  EXPECT_NEAR(cap.done[0].first, 2.0, 1e-9);  // full rate despite Low class
}

TEST(FluidLink, ArrivalDuringServiceAdjustsShares) {
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 1.0, cap.fn(eq));  // equal split
  // Low starts alone at t=0 with 2000 B (full rate).
  auto low = make_msg(2000 - Message::kHeaderOverhead, Priority::Low);
  low.tag = 1;
  link.enqueue(std::move(low));
  // High (1000 B) arrives at t=1; from then: each gets 500 B/s.
  eq.at(1.0, [&] {
    auto high = make_msg(1000 - Message::kHeaderOverhead, Priority::High);
    high.tag = 2;
    link.enqueue(std::move(high));
  });
  eq.run();
  ASSERT_EQ(cap.done.size(), 2u);
  // Low: 1000 B left at t=1, at 500 B/s -> t=3. High: 1000 B at 500 -> t=3.
  EXPECT_NEAR(cap.done[0].first, 3.0, 1e-6);
  EXPECT_NEAR(cap.done[1].first, 3.0, 1e-6);
}

TEST(FluidLink, LowQueueManyEpochsFifoWithinEpoch) {
  // A backlog spanning several epochs, several messages each, enqueued in
  // scrambled order: service must be (epoch asc, arrival order) — the
  // QUIC-stream scheduling the flat heap has to preserve exactly.
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  // Head-of-line blocker so nothing else starts while we enqueue.
  link.enqueue(make_msg(5000 - Message::kHeaderOverhead, Priority::Low, 0, 999));
  const std::uint64_t epochs[] = {7, 3, 5, 3, 7, 5, 3, 7, 5};
  std::uint64_t arrival = 0;
  for (std::uint64_t e : epochs) {
    auto m = make_msg(1000 - Message::kHeaderOverhead, Priority::Low, e,
                      e * 100 + arrival++);  // tag encodes (epoch, arrival)
    link.enqueue(std::move(m));
  }
  eq.run();
  ASSERT_EQ(cap.done.size(), 10u);
  // Expected: blocker, then epoch 3 arrivals (1, 3, 6), 5 (2, 5, 8), 7 (0, 4, 7).
  const std::uint64_t want[] = {999, 301, 303, 306, 502, 505, 508, 700, 704, 707};
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cap.done[i].second.tag, want[i]) << i;
  }
}

TEST(FluidLink, CancelKeepsInServiceAndUnrelatedMessages) {
  // Seed-equivalence of cancel(): the in-service message keeps transmitting,
  // only queued messages with the tag vanish, and the survivors' relative
  // order is untouched.
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 0, 7));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 1, 8));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 2, 7));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 3, 9));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 4, 7));
  EXPECT_EQ(link.backlog_bytes(), 5000u);
  const std::size_t removed = link.cancel(7);
  EXPECT_EQ(removed, 2000u);  // two queued tag-7 messages; in-service survives
  EXPECT_EQ(link.backlog_bytes(), 3000u);
  eq.run();
  ASSERT_EQ(cap.done.size(), 3u);
  EXPECT_EQ(cap.done[0].second.tag, 7u);  // in-service finishes
  EXPECT_EQ(cap.done[1].second.tag, 8u);
  EXPECT_EQ(cap.done[2].second.tag, 9u);
  EXPECT_NEAR(cap.done[0].first, 1.0, 1e-9);
  EXPECT_NEAR(cap.done[1].first, 2.0, 1e-6);
  EXPECT_NEAR(cap.done[2].first, 3.0, 1e-6);
}

TEST(FluidLink, CancelWholeBacklogGoesIdleThenResumes) {
  // Cancelling everything queued must retract the planned wake cleanly; the
  // link then accepts new traffic as if freshly constructed.
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 0, 5));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 1, 5));
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 2, 5));
  EXPECT_EQ(link.cancel(5), 2000u);  // all but the in-service one
  eq.run();
  ASSERT_EQ(cap.done.size(), 1u);
  EXPECT_EQ(link.backlog_bytes(), 0u);
  // Fresh traffic after the queue drained fully.
  eq.at(10.0, [&] {
    link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 0, 6));
  });
  eq.run();
  ASSERT_EQ(cap.done.size(), 2u);
  EXPECT_EQ(cap.done[1].second.tag, 6u);
  EXPECT_NEAR(cap.done[1].first, 11.0, 1e-9);
}

TEST(FluidLink, CancelInterleavedWithEnqueueKeepsEpochOrder) {
  // Epoch ordering must survive a heap rebuild: cancel in the middle of a
  // backlog, then enqueue more messages of an earlier epoch.
  EventQueue eq;
  Capture cap;
  FluidLink link(eq, Trace::constant(1000.0), 30.0, cap.fn(eq));
  link.enqueue(make_msg(3000 - Message::kHeaderOverhead, Priority::Low, 0, 99));  // blocker
  for (std::uint64_t e : {4u, 2u, 6u}) {
    link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, e, e));
  }
  EXPECT_EQ(link.cancel(4), 1000u);
  link.enqueue(make_msg(1000 - Message::kHeaderOverhead, Priority::Low, 1, 1));
  eq.run();
  ASSERT_EQ(cap.done.size(), 4u);
  EXPECT_EQ(cap.done[0].second.tag, 99u);
  EXPECT_EQ(cap.done[1].second.tag, 1u);
  EXPECT_EQ(cap.done[2].second.tag, 2u);
  EXPECT_EQ(cap.done[3].second.tag, 6u);
}

}  // namespace
}  // namespace dl::sim
