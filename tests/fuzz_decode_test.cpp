// Decoder robustness: every wire decoder in the library must be total —
// random bytes, bit-flipped valid messages, and truncations must never
// crash, hang, or allocate absurdly; they either parse or return failure.
// (Byzantine peers control every one of these inputs.)
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "app/kv_state_machine.hpp"
#include "ba/binary_agreement.hpp"
#include "common/envelope.hpp"
#include "common/rng.hpp"
#include "crypto/fingerprint.hpp"
#include "dl/block.hpp"
#include "dl/catchup.hpp"
#include "merkle/merkle_tree.hpp"
#include "net/cluster_config.hpp"
#include "net/frame.hpp"
#include "storage/ledger_store.hpp"
#include "vid/avid_fp.hpp"
#include "vid/avid_m.hpp"

namespace dl {
namespace {

// Feeds `input` to every decoder; success criterion is simply "no crash".
void feed_all(ByteView input) {
  { auto v = Envelope::decode(input); (void)v; }
  { vid::ChunkMsg m; (void)vid::ChunkMsg::decode(input, m); }
  { vid::RootMsg m; (void)vid::RootMsg::decode(input, m); }
  { vid::FpChunkMsg m; (void)vid::FpChunkMsg::decode(input, m); }
  { vid::FpChecksumMsg m; (void)vid::FpChecksumMsg::decode(input, m); }
  { MerkleProof p; (void)MerkleProof::decode(input, p); }
  { CrossChecksum c; (void)CrossChecksum::decode(input, c); }
  { ba::BaRoundMsg m; (void)ba::BaRoundMsg::decode(input, m); }
  { ba::BaDoneMsg m; (void)ba::BaDoneMsg::decode(input, m); }
  { auto b = core::Block::decode(input, 16); (void)b; }
  { auto c = app::Command::decode(input); (void)c; }
  { net::WireFrame wf; (void)net::decode_wire(input, wf); }
  { core::CatchUpRequestMsg m; (void)core::CatchUpRequestMsg::decode(input, m); }
  { core::CatchUpChunkMsg m; (void)core::CatchUpChunkMsg::decode(input, m); }
  { core::CatchUpDoneMsg m; (void)core::CatchUpDoneMsg::decode(input, m); }
}

// Pushes `input` through the TCP transport path as a raw stream: deframe,
// wire-decode, envelope-decode. Must never crash or buffer unboundedly.
void feed_framed_stream(ByteView input, Rng& rng) {
  net::FrameReader reader(/*max_frame=*/1 << 16);
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::size_t step =
        1 + static_cast<std::size_t>(rng.next_below(1 + input.size() / 4));
    const std::size_t len = std::min(step, input.size() - pos);
    if (!reader.feed(input.subspan(pos, len))) break;  // poisoned: drop conn
    Bytes frame;
    while (reader.next(frame)) {
      net::WireFrame wf;
      if (!net::decode_wire(frame, wf)) continue;
      if (wf.kind == net::WireKind::Data) {
        auto env = Envelope::decode(wf.data);
        (void)env;
      }
    }
    pos += len;
  }
}

TEST(FuzzDecode, RandomBytes) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const std::size_t len = static_cast<std::size_t>(rng.next_below(512));
    feed_all(random_bytes(len, seed));
  }
}

TEST(FuzzDecode, BitFlippedValidMessages) {
  // Start from real messages of each type and flip random bits.
  const vid::Params p{7, 2};
  const Bytes block = random_bytes(777, 1);
  std::vector<Bytes> corpus;
  for (const auto& m : vid::avid_m_disperse(p, block)) corpus.push_back(m.encode());
  for (const auto& m : vid::avid_fp_disperse(p, block)) corpus.push_back(m.encode());
  {
    core::Block b;
    b.v_array.assign(16, 3);
    core::Transaction tx;
    tx.payload = bytes_of("x");
    b.txs.push_back(tx);
    corpus.push_back(b.encode());
    Envelope env;
    env.kind = MsgKind::VidChunk;
    env.body = corpus[0];
    corpus.push_back(env.encode());
    corpus.push_back(ba::BaRoundMsg{3, true}.encode());
    corpus.push_back(app::Command{app::CommandKind::Put, "k", "v", ""}.encode());
    corpus.push_back(core::CatchUpRequestMsg{12, 64}.encode());
    core::CatchUpChunkMsg cu;
    cu.round_from = 12;
    cu.at_epoch = 13;
    cu.block_count = 2;
    cu.block_index = 1;
    cu.block_epoch = 13;
    cu.proposer = 4;
    cu.chunk = vid::avid_m_disperse(p, block)[2];
    corpus.push_back(cu.encode());
    corpus.push_back(core::CatchUpDoneMsg{12, 40}.encode());
  }
  Rng rng(42);
  for (const Bytes& base : corpus) {
    for (int trial = 0; trial < 50; ++trial) {
      Bytes mutated = base;
      const int flips = 1 + static_cast<int>(rng.next_below(8));
      for (int i = 0; i < flips; ++i) {
        const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
        mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
      feed_all(mutated);
    }
  }
}

TEST(FuzzDecode, AllTruncations) {
  const vid::Params p{4, 1};
  const auto msgs = vid::avid_m_disperse(p, random_bytes(100, 2));
  const Bytes full = msgs[0].encode();
  for (std::size_t len = 0; len < full.size(); ++len) {
    feed_all(ByteView(full.data(), len));
  }
}

TEST(FuzzDecode, FramedTransportRandomStreams) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed);
    const std::size_t len = static_cast<std::size_t>(rng.next_below(2048));
    feed_framed_stream(random_bytes(len, seed ^ 0xF4A3Eu), rng);
  }
}

TEST(FuzzDecode, FramedTransportMutatedValidStreams) {
  // A realistic stream (hello + several framed envelopes), then bit flips.
  Bytes stream = net::encode_hello(2);
  const vid::Params p{4, 1};
  const auto chunks = vid::avid_m_disperse(p, random_bytes(500, 11));
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    Envelope env;
    env.kind = MsgKind::VidChunk;
    env.epoch = i;
    env.instance = 2;
    env.body = chunks[i].encode();
    append(stream, net::encode_data_frame(env.encode()));
  }
  Rng rng(13);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes mutated = stream;
    const int flips = 1 + static_cast<int>(rng.next_below(16));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    feed_framed_stream(mutated, rng);
  }
  // Truncations of the pristine stream.
  for (std::size_t len = 0; len < stream.size(); len += 7) {
    Rng r2(len);
    feed_framed_stream(ByteView(stream.data(), len), r2);
  }
}

TEST(FuzzDecode, ClientFramedStreamsMutatedAndTruncated) {
  // A realistic client-plane conversation: hello, pipelined submits, acks,
  // commits, goodbye. Mutated and truncated variants must never crash and
  // must at worst poison the stream (the gateway/client drops the
  // connection on the first bad frame).
  Bytes stream = net::encode_client_hello(0xABCDEF0123456789ULL);
  for (std::uint64_t i = 0; i < 6; ++i) {
    append(stream, net::encode_submit_tx(i, random_bytes(64 + i * 17, i)));
    append(stream, net::encode_tx_ack(i, net::TxStatus::Accepted));
    append(stream, net::encode_tx_committed(i, i / 2, static_cast<std::uint32_t>(i % 4),
                                            1000 * i));
  }
  append(stream, net::encode_goodbye());

  Rng rng(29);
  for (int trial = 0; trial < 150; ++trial) {
    Bytes mutated = stream;
    const int flips = 1 + static_cast<int>(rng.next_below(16));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = static_cast<std::size_t>(rng.next_below(mutated.size()));
      mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    feed_framed_stream(mutated, rng);
  }
  for (std::size_t len = 0; len < stream.size(); len += 5) {
    Rng r2(len);
    feed_framed_stream(ByteView(stream.data(), len), r2);
  }
}

TEST(FuzzDecode, ProtocolAutomataSurviveGarbage) {
  // Random kind/bodies into live automata.
  vid::AvidMServer server({4, 1}, 0);
  ba::BinaryAgreement ba(4, 1, 0, [](std::uint32_t) { return true; });
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Bytes body = random_bytes(static_cast<std::size_t>(rng.next_below(128)), static_cast<std::uint64_t>(i));
    const auto kind = static_cast<MsgKind>(rng.next_below(40));
    const int from = static_cast<int>(rng.next_below(4));
    Outbox out;
    server.handle(from, kind, body, out);
    ba.handle(from, kind, body, out);
  }
  // Automata remain functional after the garbage storm.
  EXPECT_FALSE(server.complete());
  Outbox out;
  ba.input(true, out);
  EXPECT_TRUE(ba.has_input());
}

// LedgerStore::open is a decoder too: segment files are attacker-ish input
// after a crash (torn writes, bit rot). Opening any mutation of a valid
// store must never crash and must recover a sane (possibly shorter) prefix.
TEST(FuzzDecode, LedgerStoreOpenSurvivesMutatedSegments) {
  namespace fs = std::filesystem;
  char tmpl[] = "/tmp/dl_fuzz_store.XXXXXX";
  ASSERT_NE(mkdtemp(tmpl), nullptr);
  const fs::path root(tmpl);
  const std::string pristine = (root / "pristine").string();

  // Build a small multi-segment store with a committed prefix and a tail.
  const std::uint64_t kEpochs = 12;
  {
    storage::StoreOptions opt;
    opt.segment_bytes = 1024;  // force several segments
    opt.fsync = storage::FsyncPolicy::kNever;
    std::string err;
    auto store = storage::LedgerStore::open(pristine, opt, &err);
    ASSERT_NE(store, nullptr) << err;
    for (std::uint64_t e = 0; e < kEpochs; ++e) {
      storage::BlockRecord rec;
      rec.at_epoch = e;
      rec.block_epoch = e;
      rec.proposer = static_cast<std::uint32_t>(e % 4);
      rec.content = random_bytes(200, e);
      store->append_block(rec);
      store->append_epoch_done(e);
      store->append_activity_frontier(e + 1);
    }
    storage::BlockRecord tail;  // uncommitted tail record
    tail.at_epoch = kEpochs;
    tail.block_epoch = kEpochs;
    tail.content = random_bytes(100, 77);
    store->append_block(tail);
    store->sync();
  }

  std::vector<fs::path> segs;
  for (const auto& ent : fs::directory_iterator(pristine)) segs.push_back(ent.path());
  std::sort(segs.begin(), segs.end());
  ASSERT_GT(segs.size(), 2u);

  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    const fs::path victim = root / ("mut_" + std::to_string(trial));
    fs::create_directory(victim);
    for (const auto& s : segs) fs::copy_file(s, victim / s.filename());

    // Mutate one segment: bit flips, truncation, or garbage splice.
    const fs::path target = victim / segs[rng.next_below(segs.size())].filename();
    Bytes data;
    {
      std::ifstream in(target, std::ios::binary);
      data.assign(std::istreambuf_iterator<char>(in), {});
    }
    const auto mode = rng.next_below(3);
    if (mode == 0 && !data.empty()) {
      const int flips = 1 + static_cast<int>(rng.next_below(16));
      for (int i = 0; i < flips; ++i) {
        data[rng.next_below(data.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
      }
    } else if (mode == 1) {
      data.resize(rng.next_below(data.size() + 1));
    } else {
      const Bytes junk = random_bytes(1 + rng.next_below(64),
                                      static_cast<std::uint64_t>(trial));
      const std::size_t at = rng.next_below(data.size() + 1);
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(at), junk.begin(),
                  junk.end());
    }
    {
      std::ofstream out(target, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(data.data()),
                static_cast<std::streamsize>(data.size()));
    }

    std::string err;
    auto store = storage::LedgerStore::open(victim.string(), {}, &err);
    ASSERT_NE(store, nullptr) << "trial " << trial << ": " << err;
    // Whatever survived must be a sane prefix, and the store must be usable.
    EXPECT_LE(store->recovered().delivered_epochs, kEpochs);
    EXPECT_LE(store->committed_blocks(), kEpochs);
    std::uint64_t replayed = 0;
    store->for_each_committed([&](const storage::BlockRecord&) {
      ++replayed;
      return true;
    });
    EXPECT_EQ(replayed, store->committed_blocks());
    storage::BlockRecord rec;
    rec.at_epoch = store->delivered_frontier();
    rec.block_epoch = rec.at_epoch;
    rec.content = random_bytes(32, 5);
    store->append_block(rec);
    store->append_epoch_done(rec.at_epoch);
    store->sync();
    EXPECT_EQ(store->delivered_frontier(), rec.at_epoch + 1);
  }
  fs::remove_all(root);
}

// [[link]] sections are operator-written WAN shaping rules: parsing must be
// total (mutated or truncated configs either parse or fail with a
// diagnostic, never crash), and the documented rejection classes —
// malformed schedules, non-positive rates, conflicting rate specs,
// out-of-range ids — must all produce errors, not misconfigured shapers.
TEST(FuzzDecode, ClusterConfigLinkSectionsMutatedAndTruncated) {
  const std::string valid =
      "[cluster]\n"
      "n = 4\n"
      "f = 1\n"
      "[[node]]\nid = 0\nhost = \"127.0.0.1\"\nport = 9000\n"
      "[[node]]\nid = 1\nhost = \"127.0.0.1\"\nport = 9001\n"
      "[[node]]\nid = 2\nhost = \"127.0.0.1\"\nport = 9002\n"
      "[[node]]\nid = 3\nhost = \"127.0.0.1\"\nport = 9003\n"
      "[[link]]\n"
      "from = 0\n"
      "to = 1\n"
      "schedule = \"250000, 125000, 62500\"\n"
      "step_ms = 500\n"
      "delay_ms = 20\n"
      "jitter_ms = 5\n"
      "loss_ppm = 1000\n"
      "[[link]]\n"
      "rate = 1000000\n"
      "burst = 65536\n"
      "seed = 7\n";
  {
    std::string err;
    auto cfg = net::ClusterConfig::parse(valid, &err);
    ASSERT_TRUE(cfg.has_value()) << err;
    ASSERT_EQ(cfg->links.size(), 2u);
    EXPECT_EQ(cfg->links[0].schedule.rates.size(), 3u);
    EXPECT_EQ(cfg->match_link(0, 1), &cfg->links[0]);
    EXPECT_EQ(cfg->match_link(2, 3), &cfg->links[1]);
  }

  // Random edits: parse() either succeeds or reports a reason.
  Rng rng(0x11BB);
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text = valid;
    const int edits = 1 + static_cast<int>(rng.next_below(8));
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t pos = rng.next_below(text.size());
      switch (rng.next_below(3)) {
        case 0:  // overwrite with an arbitrary byte
          text[pos] = static_cast<char>(rng.next_below(256));
          break;
        case 1:  // insert a printable-ish byte
          text.insert(pos, 1, static_cast<char>(32 + rng.next_below(96)));
          break;
        default:
          text.erase(pos, 1);
          break;
      }
    }
    std::string err;
    auto cfg = net::ClusterConfig::parse(text, &err);
    if (!cfg) {
      EXPECT_FALSE(err.empty());
    }
  }

  // Every truncation point.
  for (std::size_t len = 0; len <= valid.size(); ++len) {
    std::string err;
    auto cfg = net::ClusterConfig::parse(valid.substr(0, len), &err);
    (void)cfg;
  }

  // Targeted rejection classes: each body yields a parse error.
  const std::string preamble = valid.substr(0, valid.find("[[link]]"));
  const char* bad_links[] = {
      "schedule = \"-5\"",               // negative rate entry
      "schedule = \"0\"",                // zero rate entry
      "schedule = \"250000,,62500\"",    // empty entry
      "schedule = \"nan\"",              // non-finite
      "schedule = \"1e99\"",             // beyond the rate ceiling
      "schedule = \"\"",                 // empty list
      "rate = 0",                        // constant rate must be positive
      "rate = -1",                       // negative integer
      "from = 9\nrate = 1000",           // id out of range
      "to = 9\nrate = 1000",             // id out of range
      "from = 2\nto = 2\nrate = 1000",   // self link
      "rate = 5\nschedule = \"5\"",      // conflicting rate specs
      "rate = 5\ntrace = \"x.trace\"",   // conflicting rate specs
      "step_ms = 100",                   // step without a schedule
      "step_ms = 0\nschedule = \"5\"",   // step out of range
      "delay_ms = 999999\nrate = 5",     // delay out of range
      "loss_ppm = 1000000\nrate = 5",    // loss must stay below 100%
      "",                                // rule shapes nothing
      "rate = 5\nrate = 5",              // duplicate key
  };
  for (const char* body : bad_links) {
    const std::string text = preamble + "[[link]]\n" + body + "\n";
    std::string err;
    auto cfg = net::ClusterConfig::parse(text, &err);
    EXPECT_FALSE(cfg.has_value()) << "accepted: " << body;
    EXPECT_FALSE(err.empty()) << body;
  }

  // Unresolvable trace references fail at load()/resolve time, with the
  // offending path named.
  {
    std::string err;
    auto cfg = net::ClusterConfig::parse(
        preamble + "[[link]]\ntrace = \"no_such_file.trace\"\n", &err);
    ASSERT_TRUE(cfg.has_value()) << err;
    EXPECT_FALSE(cfg->resolve_traces("/nonexistent_dir", &err));
    EXPECT_NE(err.find("no_such_file.trace"), std::string::npos) << err;
  }
}

}  // namespace
}  // namespace dl
