// Reed-Solomon properties: systematic layout, any-K-subset reconstruction,
// determinism, padding round-trips, and failure modes — parameter-swept over
// the (K, N) pairs DispersedLedger actually uses (K = N-2f).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "erasure/reed_solomon.hpp"

namespace dl {
namespace {

struct RsParam {
  int n;
  int f;
  int k() const { return n - 2 * f; }
};

class ReedSolomonP : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonP, RoundTripAllChunks) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  const Bytes block = random_bytes(10000, 1);
  auto chunks = rs.encode(block);
  ASSERT_EQ(static_cast<int>(chunks.size()), p.n);
  auto back = rs.decode(chunks);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, block);
}

TEST_P(ReedSolomonP, AnyKSubsetDecodes) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  const Bytes block = random_bytes(4321, 2);
  const auto chunks = rs.encode(block);
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    // Random K-subset of chunk indices.
    std::vector<int> idx(static_cast<std::size_t>(p.n));
    for (int i = 0; i < p.n; ++i) idx[static_cast<std::size_t>(i)] = i;
    for (int i = p.n - 1; i > 0; --i) {
      std::swap(idx[static_cast<std::size_t>(i)],
                idx[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(i + 1)))]);
    }
    std::vector<Bytes> subset(static_cast<std::size_t>(p.n));
    for (int i = 0; i < p.k(); ++i) {
      subset[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])] =
          chunks[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])];
    }
    auto back = rs.decode(subset);
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    EXPECT_EQ(*back, block);
  }
}

TEST_P(ReedSolomonP, ParityOnlyDecodes) {
  const auto p = GetParam();
  if (p.n - p.k() < p.k()) return;  // not enough parity rows alone
  const ReedSolomon rs(p.k(), p.n);
  const Bytes block = random_bytes(999, 4);
  const auto chunks = rs.encode(block);
  std::vector<Bytes> subset(static_cast<std::size_t>(p.n));
  for (int i = p.n - p.k(); i < p.n; ++i) {
    subset[static_cast<std::size_t>(i)] = chunks[static_cast<std::size_t>(i)];
  }
  auto back = rs.decode(subset);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, block);
}

TEST_P(ReedSolomonP, TooFewChunksFails) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  const auto chunks = rs.encode(random_bytes(500, 5));
  std::vector<Bytes> subset(static_cast<std::size_t>(p.n));
  for (int i = 0; i < p.k() - 1; ++i) subset[static_cast<std::size_t>(i)] = chunks[static_cast<std::size_t>(i)];
  EXPECT_FALSE(rs.decode(subset).has_value());
}

TEST_P(ReedSolomonP, SystematicPrefix) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  // Top K x K of the matrix is the identity: data chunks are raw stripes.
  for (int r = 0; r < p.k(); ++r) {
    for (int c = 0; c < p.k(); ++c) {
      EXPECT_EQ(rs.matrix_at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST_P(ReedSolomonP, DeterministicEncode) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  const Bytes block = random_bytes(2000, 6);
  EXPECT_EQ(rs.encode(block), rs.encode(block));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReedSolomonP,
                         ::testing::Values(RsParam{4, 1}, RsParam{7, 2},
                                           RsParam{10, 3}, RsParam{16, 5},
                                           RsParam{31, 10}, RsParam{64, 21},
                                           RsParam{128, 42}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f);
                         });

TEST(ReedSolomon, EmptyBlock) {
  const ReedSolomon rs(4, 10);
  auto chunks = rs.encode({});
  auto back = rs.decode(chunks);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
}

TEST(ReedSolomon, OneByteBlock) {
  const ReedSolomon rs(6, 16);
  const Bytes block = {0x42};
  auto back = rs.decode(rs.encode(block));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, block);
}

TEST(ReedSolomon, SizesNotMultipleOfK) {
  const ReedSolomon rs(6, 16);
  for (std::size_t sz : {1u, 5u, 6u, 7u, 100u, 101u, 149999u}) {
    const Bytes block = random_bytes(sz, sz);
    auto back = rs.decode(rs.encode(block));
    ASSERT_TRUE(back.has_value()) << sz;
    EXPECT_EQ(*back, block) << sz;
  }
}

TEST(ReedSolomon, ChunkSizesEqual) {
  const ReedSolomon rs(6, 16);
  const auto chunks = rs.encode(random_bytes(1000, 9));
  for (const auto& c : chunks) EXPECT_EQ(c.size(), chunks[0].size());
  // ceil((1000+4)/6) = 168.
  EXPECT_EQ(chunks[0].size(), 168u);
}

TEST(ReedSolomon, RaggedChunksRejected) {
  const ReedSolomon rs(4, 10);
  auto chunks = rs.encode(random_bytes(100, 10));
  chunks[2].push_back(0);  // corrupt size
  for (std::size_t i = 5; i < chunks.size(); ++i) chunks[i].clear();
  EXPECT_FALSE(rs.decode(chunks).has_value());
}

TEST(ReedSolomon, GarbageLengthHeaderRejected) {
  const ReedSolomon rs(4, 10);
  // Hand-craft chunks that decode to stripes whose length header exceeds
  // the actual payload.
  std::vector<Bytes> data(4, Bytes(8, 0));
  data[0] = {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0};  // length = 2^32-1
  const auto chunks = rs.encode_shards(data);
  EXPECT_FALSE(rs.decode(chunks).has_value());
}

TEST(ReedSolomon, BadParamsThrow) {
  EXPECT_THROW(ReedSolomon(0, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(5, 4), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(4, 256), std::invalid_argument);
  EXPECT_NO_THROW(ReedSolomon(1, 1));
  EXPECT_NO_THROW(ReedSolomon(85, 255));
}

TEST(ReedSolomon, EncodeShardsRejectsRagged) {
  const ReedSolomon rs(2, 4);
  std::vector<Bytes> bad = {Bytes(4, 1), Bytes(5, 2)};
  EXPECT_THROW(rs.encode_shards(bad), std::invalid_argument);
  std::vector<Bytes> wrong_count = {Bytes(4, 1)};
  EXPECT_THROW(rs.encode_shards(wrong_count), std::invalid_argument);
}

TEST_P(ReedSolomonP, DataShardsOnlyMatchesFullReconstruction) {
  const auto p = GetParam();
  const ReedSolomon rs(p.k(), p.n);
  const Bytes block = random_bytes(2048, 12);
  const auto chunks = rs.encode(block);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Bytes> holes = chunks;
    // Punch up to N-K random holes.
    for (int h = 0; h < p.n - p.k(); ++h) {
      holes[static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(p.n)))].clear();
    }
    const auto data = rs.reconstruct_data_shards(holes);
    const auto all = rs.reconstruct_shards(holes);
    ASSERT_EQ(data.has_value(), all.has_value()) << trial;
    if (!data) continue;
    ASSERT_EQ(static_cast<int>(data->size()), p.k());
    for (int i = 0; i < p.k(); ++i) {
      EXPECT_EQ((*data)[static_cast<std::size_t>(i)], (*all)[static_cast<std::size_t>(i)]) << trial;
    }
  }
}

TEST(ReedSolomon, DataShardsFastPathWhenAllDataPresent) {
  const ReedSolomon rs(4, 10);
  const Bytes block = random_bytes(777, 14);
  auto chunks = rs.encode(block);
  for (std::size_t i = 4; i < chunks.size(); ++i) chunks[i].clear();  // parity gone
  const auto data = rs.reconstruct_data_shards(chunks);
  ASSERT_TRUE(data.has_value());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ((*data)[static_cast<std::size_t>(i)], chunks[static_cast<std::size_t>(i)]);
  }
}

TEST(ReedSolomon, DataShardsTooFewFails) {
  const ReedSolomon rs(4, 10);
  auto chunks = rs.encode(random_bytes(100, 15));
  std::vector<Bytes> subset(10);
  for (int i = 0; i < 3; ++i) subset[static_cast<std::size_t>(i)] = chunks[static_cast<std::size_t>(i)];
  EXPECT_FALSE(rs.reconstruct_data_shards(subset).has_value());
}

TEST(ReedSolomon, ReconstructShardsRebuildsAll) {
  const ReedSolomon rs(3, 9);
  const Bytes block = random_bytes(333, 11);
  const auto chunks = rs.encode(block);
  std::vector<Bytes> holes = chunks;
  holes[0].clear();
  holes[4].clear();
  holes[8].clear();
  auto all = rs.reconstruct_shards(holes);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(*all, chunks);
}

}  // namespace
}  // namespace dl
