// GF(2^64) arithmetic, the GF(2^8)->GF(2^64) embedding, and the fingerprint
// homomorphism that AVID-FP's dispersal-time verification rests on.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/fingerprint.hpp"
#include "erasure/gf256.hpp"
#include "erasure/reed_solomon.hpp"

namespace dl {
namespace {

TEST(Gf64, MulIdentityZero) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next();
    EXPECT_EQ(gf64::mul(a, 1), a);
    EXPECT_EQ(gf64::mul(1, a), a);
    EXPECT_EQ(gf64::mul(a, 0), 0u);
  }
}

TEST(Gf64, MulCommutativeAssociative) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next(), c = rng.next();
    EXPECT_EQ(gf64::mul(a, b), gf64::mul(b, a));
    EXPECT_EQ(gf64::mul(gf64::mul(a, b), c), gf64::mul(a, gf64::mul(b, c)));
  }
}

TEST(Gf64, Distributive) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next(), c = rng.next();
    EXPECT_EQ(gf64::mul(a, b ^ c), gf64::mul(a, b) ^ gf64::mul(a, c));
  }
}

TEST(Gf64, PowConsistent) {
  const std::uint64_t g = 0x9E3779B97F4A7C15ULL;
  std::uint64_t acc = 1;
  for (int e = 0; e < 64; ++e) {
    EXPECT_EQ(gf64::pow(g, static_cast<std::uint64_t>(e)), acc);
    acc = gf64::mul(acc, g);
  }
}

TEST(Embedding, IsFieldHomomorphism) {
  // phi must preserve both operations for ALL pairs — exhaustive.
  EXPECT_EQ(gf256_embed(0), 0u);
  EXPECT_EQ(gf256_embed(1), 1u);
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf256_embed(x ^ y), gf256_embed(x) ^ gf256_embed(y));
      EXPECT_EQ(gf256_embed(gf256::mul(x, y)),
                gf64::mul(gf256_embed(x), gf256_embed(y)));
    }
  }
}

TEST(Embedding, Injective) {
  std::set<std::uint64_t> seen;
  for (int a = 0; a < 256; ++a) seen.insert(gf256_embed(static_cast<std::uint8_t>(a)));
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Fingerprint, DetectsDifferences) {
  const Bytes a = random_bytes(1000, 1);
  Bytes b = a;
  b[500] ^= 1;
  const std::uint64_t r = 0x123456789ABCDEFULL;
  EXPECT_NE(fingerprint(a, r), fingerprint(b, r));
  EXPECT_EQ(fingerprint(a, r), fingerprint(a, r));
}

TEST(Fingerprint, LinearInData) {
  // fp(a xor b) == fp(a) xor fp(b) byte-wise (phi is additive).
  const Bytes a = random_bytes(512, 2);
  const Bytes b = random_bytes(512, 3);
  Bytes x(512);
  for (std::size_t i = 0; i < 512; ++i) x[i] = a[i] ^ b[i];
  const std::uint64_t r = 0xDEADBEEFCAFEBABEULL;
  EXPECT_EQ(fingerprint(x, r), fingerprint(a, r) ^ fingerprint(b, r));
}

TEST(Fingerprint, HomomorphicWithReedSolomon) {
  // The AVID-FP check: fingerprint of any encoded chunk equals the encoding
  // row applied (in the embedded field) to the data-chunk fingerprints.
  const int k = 4, n = 10;
  const ReedSolomon rs(k, n);
  const auto chunks = rs.encode(random_bytes(1000, 4));
  const std::uint64_t r = 0x1122334455667788ULL;
  std::vector<std::uint64_t> data_fps;
  for (int i = 0; i < k; ++i) data_fps.push_back(fingerprint(chunks[static_cast<std::size_t>(i)], r));
  for (int row = 0; row < n; ++row) {
    std::vector<std::uint64_t> coeffs;
    for (int c = 0; c < k; ++c) coeffs.push_back(gf256_embed(rs.matrix_at(row, c)));
    EXPECT_EQ(fingerprint(chunks[static_cast<std::size_t>(row)], r),
              combine(coeffs, data_fps))
        << "row " << row;
  }
}

TEST(Fingerprint, TamperedChunkFailsHomomorphism) {
  const int k = 4, n = 10;
  const ReedSolomon rs(k, n);
  auto chunks = rs.encode(random_bytes(500, 5));
  const std::uint64_t r = 0x1111111111111111ULL;
  std::vector<std::uint64_t> data_fps;
  for (int i = 0; i < k; ++i) data_fps.push_back(fingerprint(chunks[static_cast<std::size_t>(i)], r));
  chunks[7][3] ^= 0x5A;  // tamper a parity chunk
  std::vector<std::uint64_t> coeffs;
  for (int c = 0; c < k; ++c) coeffs.push_back(gf256_embed(rs.matrix_at(7, c)));
  EXPECT_NE(fingerprint(chunks[7], r), combine(coeffs, data_fps));
}

TEST(CrossChecksum, EncodeDecodeRoundTrip) {
  CrossChecksum cc;
  for (int i = 0; i < 10; ++i) cc.chunk_hashes.push_back(sha256(random_bytes(10, static_cast<std::uint64_t>(i))));
  for (int i = 0; i < 4; ++i) cc.data_fps.push_back(0x1000ULL + static_cast<std::uint64_t>(i));
  cc.eval_point = 77;
  CrossChecksum back;
  ASSERT_TRUE(CrossChecksum::decode(cc.encode(), back));
  EXPECT_EQ(back, cc);
}

TEST(CrossChecksum, WireSizeMatchesPaperFormula) {
  // N*lambda + (N-2f)*gamma + point: the per-message overhead of AVID-FP.
  CrossChecksum cc;
  cc.chunk_hashes.resize(16);
  cc.data_fps.resize(6);
  EXPECT_EQ(cc.wire_size(), 16u * 32 + 6u * 8 + 8);
}

TEST(CrossChecksum, DecodeRejectsGarbage) {
  CrossChecksum out;
  EXPECT_FALSE(CrossChecksum::decode(bytes_of("junk"), out));
  EXPECT_FALSE(CrossChecksum::decode({}, out));
  // Absurd counts rejected.
  Bytes huge = {0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(CrossChecksum::decode(huge, out));
}

}  // namespace
}  // namespace dl
