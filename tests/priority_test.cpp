// Traffic-prioritization behaviours at the protocol level (§4.5/§5):
// dispersal must keep flowing while retrieval is backlogged, the
// decode-cancellation optimization must save ingress bandwidth, and
// per-epoch ordering must favour older retrievals.
#include <gtest/gtest.h>

#include <memory>

#include "dl/node.hpp"
#include "runtime/sim_env.hpp"

namespace dl::core {
namespace {

struct MiniCluster {
  sim::Simulator sim;
  std::vector<std::unique_ptr<runtime::SimEnv>> envs;
  std::vector<std::unique_ptr<DlNode>> nodes;

  MiniCluster(sim::NetworkConfig net, NodeConfig base) : sim(net) {
    for (int i = 0; i < net.n; ++i) {
      NodeConfig cfg = base;
      cfg.self = i;
      envs.push_back(std::make_unique<runtime::SimEnv>(sim, i));
      nodes.push_back(std::make_unique<DlNode>(cfg, *envs.back()));
      envs.back()->attach(*nodes.back());
    }
  }
};

NodeConfig backlogged_dl(int n, int f) {
  NodeConfig cfg = NodeConfig::dispersed_ledger(n, f, 0);
  cfg.backlog_tx_bytes = 250;
  cfg.max_block_bytes = 100'000;
  return cfg;
}

TEST(Priority, DispersalAdvancesDespiteRetrievalBacklog) {
  // A slow node accumulates a huge retrieval backlog. With T=30 its
  // dispersal (High class) keeps pace with the cluster; with T=1 retrieval
  // bulk crowds out dispersal and its voting frontier lags.
  auto run = [](double weight) {
    sim::NetworkConfig net = sim::NetworkConfig::uniform(4, 0.02, 3e6);
    net.weight_high = weight;
    net.egress[0] = sim::Trace::constant(0.3e6);
    net.ingress[0] = sim::Trace::constant(0.3e6);
    MiniCluster c(net, backlogged_dl(4, 1));
    c.sim.run_until(30.0);
    return c.nodes[0]->stats().current_dispersal_epoch;
  };
  const auto with_priority = run(30.0);
  const auto without_priority = run(1.0);
  EXPECT_GT(with_priority, without_priority);
}

TEST(Priority, CancelOnDecodeSavesIngress) {
  auto run = [](bool cancel) {
    sim::NetworkConfig net = sim::NetworkConfig::uniform(4, 0.02, 2e6);
    NodeConfig cfg = backlogged_dl(4, 1);
    cfg.cancel_on_decode = cancel;
    MiniCluster c(net, cfg);
    c.sim.run_until(20.0);
    // Ingress retrieval bytes per delivered payload byte.
    std::uint64_t low = 0, payload = 0;
    for (int i = 0; i < 4; ++i) {
      low += c.sim.network().ingress_bytes(i, sim::Priority::Low);
      payload += c.nodes[static_cast<std::size_t>(i)]->stats().delivered_payload_bytes;
    }
    return static_cast<double>(low) / static_cast<double>(payload);
  };
  const double with_cancel = run(true);
  const double without_cancel = run(false);
  // Without cancellation every retrieval pulls ~N/K-ish chunk data; with it,
  // closer to 1x the block. (N=4, K=2: up to 2x vs ~1x.)
  EXPECT_LT(with_cancel, without_cancel);
}

TEST(Priority, HighClassTrafficIsSmallFraction) {
  // The design goal (Fig. 13): agreement+dispersal is a thin stream.
  MiniCluster c(sim::NetworkConfig::uniform(4, 0.02, 2e6), backlogged_dl(4, 1));
  c.sim.run_until(20.0);
  const auto high = c.sim.network().ingress_bytes(1, sim::Priority::High);
  const auto low = c.sim.network().ingress_bytes(1, sim::Priority::Low);
  EXPECT_GT(high, 0u);
  EXPECT_GT(low, high);  // bulk is retrieval even at N=4 (K=2)
}

TEST(Priority, RetrievalTagsAreDistinctAcrossClients) {
  // Two clients retrieving the same block must not cancel each other's
  // ReturnChunks: after client 1's cancel, client 2 still completes.
  sim::NetworkConfig net = sim::NetworkConfig::uniform(4, 0.02, 2e6);
  MiniCluster c(net, backlogged_dl(4, 1));
  c.sim.run_until(25.0);
  // All nodes deliver continuously; if cancels leaked across clients some
  // node would stall (its retrievals never complete).
  for (const auto& node : c.nodes) {
    EXPECT_GT(node->stats().delivered_epochs, 5u);
  }
}

}  // namespace
}  // namespace dl::core
