// End-to-end integration tests of the full protocol stack on the network
// simulator: DispersedLedger, DL-Coupled, HoneyBadger, and HB-Link clusters.
//
// BFT properties checked (§2.1): Agreement + Total Order (every pair of
// correct nodes delivers prefix-consistent logs), Validity (submitted
// transactions are delivered everywhere), plus the DispersedLedger-specific
// behaviours: decoupled progress, inter-node linking, censorship resistance,
// BAD_UPLOADER consistency, and HoneyBadger's drop/re-propose behaviour.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>

#include "adversary/adversary.hpp"
#include "dl/node.hpp"
#include "hb/hb_node.hpp"
#include "runtime/sim_env.hpp"
#include "storage/ledger_store.hpp"

namespace dl::core {
namespace {

struct DeliveryRecord {
  std::uint64_t at_epoch;
  std::uint64_t block_epoch;
  int proposer;
  std::uint64_t payload;

  bool operator==(const DeliveryRecord&) const = default;
};

// A cluster harness: N nodes (some possibly crashed/Byzantine) on a uniform
// or custom network, with per-node delivery logs.
struct Cluster {
  sim::Simulator sim;
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<std::unique_ptr<runtime::SimEnv>> envs;
  std::vector<std::unique_ptr<DlNode>> owned;
  std::vector<DlNode*> nodes;  // indexed by node id; nullptr when crashed
  std::vector<std::vector<DeliveryRecord>> logs;  // fixed size: stable ptrs

  explicit Cluster(sim::NetworkConfig net)
      : sim(net), nodes(static_cast<std::size_t>(net.n), nullptr),
        logs(static_cast<std::size_t>(net.n)) {}

  DlNode* add_node(NodeConfig cfg) {
    envs.push_back(std::make_unique<runtime::SimEnv>(sim, cfg.self));
    auto node = std::make_unique<DlNode>(cfg, *envs.back());
    envs.back()->attach(*node);
    DlNode* raw = node.get();
    auto* log = &logs[static_cast<std::size_t>(cfg.self)];
    raw->set_delivery_callback([log](std::uint64_t at, BlockKey key,
                                     const Block& b, double) {
      log->push_back({at, key.epoch, key.proposer, b.payload_bytes()});
    });
    nodes[static_cast<std::size_t>(cfg.self)] = raw;
    owned.push_back(std::move(node));
    return raw;
  }

  void add_crashed(int self) {
    hosts.push_back(std::make_unique<adversary::CrashNode>());
    sim.attach(self, hosts.back().get());
  }

  // Prefix-consistency of two delivery logs.
  static void expect_prefix_consistent(const std::vector<DeliveryRecord>& a,
                                       const std::vector<DeliveryRecord>& b) {
    const std::size_t m = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_EQ(a[i], b[i]) << "logs diverge at position " << i;
    }
  }

  void expect_all_logs_consistent() {
    const std::vector<DeliveryRecord>* first = nullptr;
    for (std::size_t i = 0; i < logs.size(); ++i) {
      if (nodes[i] == nullptr) continue;
      if (first == nullptr) {
        first = &logs[i];
        continue;
      }
      expect_prefix_consistent(*first, logs[i]);
    }
  }
};

NodeConfig with_small_blocks(NodeConfig c) {
  c.max_block_bytes = 60'000;
  c.propose_size = 30'000;
  return c;
}

struct ProtoParam {
  const char* name;
  NodeConfig (*make)(int, int, int);
};

class ProtocolP : public ::testing::TestWithParam<ProtoParam> {};

TEST_P(ProtocolP, AgreementTotalOrderUnderLoad) {
  const auto& param = GetParam();
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < n; ++i) c.add_node(with_small_blocks(param.make(n, f, i)));
  // Continuous load on every node.
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 40; ++k) {
      const double t = 0.05 * k;
      DlNode* node = c.nodes[static_cast<std::size_t>(i)];
      c.sim.queue().at(t, [node, i, k] {
        node->submit(random_bytes(2000, static_cast<std::uint64_t>(i * 1000 + k)));
      });
    }
  }
  c.sim.run_until(30.0);
  // Everyone delivered something and the logs are prefix-consistent.
  for (int i = 0; i < n; ++i) {
    EXPECT_GT(c.logs[static_cast<std::size_t>(i)].size(), 10u) << param.name;
    EXPECT_GT(c.nodes[static_cast<std::size_t>(i)]->stats().delivered_payload_bytes, 0u);
  }
  c.expect_all_logs_consistent();
}

TEST_P(ProtocolP, ProgressWithFCrashedNodes) {
  const auto& param = GetParam();
  const int n = 7, f = 2;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < n - f; ++i) c.add_node(with_small_blocks(param.make(n, f, i)));
  for (int i = n - f; i < n; ++i) c.add_crashed(i);
  for (int i = 0; i < n - f; ++i) {
    DlNode* node = c.nodes[static_cast<std::size_t>(i)];
    c.sim.queue().at(0.01, [node, i] {
      for (int k = 0; k < 10; ++k) {
        node->submit(random_bytes(1000, static_cast<std::uint64_t>(i * 100 + k)));
      }
    });
  }
  c.sim.run_until(30.0);
  for (int i = 0; i < n - f; ++i) {
    EXPECT_GT(c.logs[static_cast<std::size_t>(i)].size(), 0u) << param.name;
  }
  c.expect_all_logs_consistent();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolP,
    ::testing::Values(ProtoParam{"DL", &NodeConfig::dispersed_ledger},
                      ProtoParam{"DLCoupled", &NodeConfig::dl_coupled},
                      ProtoParam{"HB", &NodeConfig::honey_badger},
                      ProtoParam{"HBLink", &NodeConfig::hb_link}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(DlNode, ValidityEveryTxDeliveredEverywhere) {
  // Each node submits tagged transactions; every correct node must deliver
  // every one of them (DL's inter-node linking guarantees all correct
  // blocks are delivered — the paper's strengthened Validity).
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  std::vector<std::set<std::string>> delivered_tx(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto cfg = with_small_blocks(NodeConfig::dispersed_ledger(n, f, i));
    auto* node = c.add_node(cfg);
    auto* got = &delivered_tx[static_cast<std::size_t>(i)];
    node->set_delivery_callback([got](std::uint64_t, BlockKey, const Block& b, double) {
      for (const auto& tx : b.txs) got->insert(to_string(tx.payload));
    });
  }
  std::set<std::string> submitted;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < 5; ++k) {
      const std::string tag = "tx-" + std::to_string(i) + "-" + std::to_string(k);
      submitted.insert(tag);
      DlNode* node = c.nodes[static_cast<std::size_t>(i)];
      c.sim.queue().at(0.1 * k, [node, tag] { node->submit(bytes_of(tag)); });
    }
  }
  c.sim.run_until(30.0);
  for (int i = 0; i < n; ++i) {
    for (const auto& tag : submitted) {
      EXPECT_TRUE(delivered_tx[static_cast<std::size_t>(i)].contains(tag))
          << "node " << i << " missing " << tag;
    }
  }
}

TEST(DlNode, DecoupledProgressUnderSpatialVariation) {
  // f+1 = 2 slow nodes (10x less bandwidth), so the (f+1)-th slowest node is
  // slow: HoneyBadger's epoch progress is gated by it at EVERY node, while
  // DispersedLedger lets the fast nodes confirm at their own pace. (With
  // only f slow nodes HB would simply leave them behind — the protocol only
  // waits for N-f nodes.)
  const int n = 4, f = 1;
  auto make_net = [] {
    sim::NetworkConfig net = sim::NetworkConfig::uniform(4, 0.02, 4e6);
    for (int i : {0, 1}) {
      net.egress[static_cast<std::size_t>(i)] = sim::Trace::constant(0.4e6);
      net.ingress[static_cast<std::size_t>(i)] = sim::Trace::constant(0.4e6);
    }
    return net;
  };

  auto run = [&](NodeConfig (*make)(int, int, int)) {
    Cluster c(make_net());
    for (int i = 0; i < n; ++i) {
      auto cfg = make(n, f, i);
      cfg.max_block_bytes = 120'000;
      cfg.backlog_tx_bytes = 250;  // infinite backlog
      c.add_node(cfg);
    }
    c.sim.run_until(30.0);
    std::vector<std::uint64_t> confirmed;
    for (auto* node : c.nodes) confirmed.push_back(node->stats().delivered_payload_bytes);
    c.expect_all_logs_consistent();
    return confirmed;
  };

  const auto dl = run(&NodeConfig::dispersed_ledger);
  const auto hb = run(&NodeConfig::honey_badger);

  // DL: a fast node confirms much more than a slow node.
  EXPECT_GT(dl[2], 2 * dl[0]);
  // HB: fast nodes are dragged down to (roughly) the straggler's pace —
  // all correct nodes deliver the same epochs, differing only by lag.
  EXPECT_LT(hb[2], 2 * hb[0] + 1'000'000);
  // And DL's fast nodes beat HB's fast nodes outright.
  EXPECT_GT(dl[2], hb[2]);
}

TEST(DlNode, InterNodeLinkingDeliversUncommittedBlocks) {
  // With a slow proposer, some of its dispersed blocks miss their epoch's
  // BA. Linking must deliver them later (delivered_linked_blocks > 0) and
  // identically at all nodes.
  const int n = 4, f = 1;
  sim::NetworkConfig net = sim::NetworkConfig::uniform(n, 0.02, 2e6);
  net.egress[3] = sim::Trace::constant(0.3e6);
  net.ingress[3] = sim::Trace::constant(0.3e6);
  Cluster c(net);
  for (int i = 0; i < n; ++i) {
    auto cfg = NodeConfig::dispersed_ledger(n, f, i);
    cfg.max_block_bytes = 100'000;
    cfg.backlog_tx_bytes = 250;
    c.add_node(cfg);
  }
  c.sim.run_until(40.0);
  std::uint64_t linked = 0;
  for (auto* node : c.nodes) linked += node->stats().delivered_linked_blocks;
  EXPECT_GT(linked, 0u);
  c.expect_all_logs_consistent();
}

TEST(DlNode, HoneyBadgerDropsAndReproposes) {
  // Plain HB: the slow node's blocks get dropped (BA outputs 0) and their
  // transactions are re-proposed; with linking they would not be.
  const int n = 4, f = 1;
  sim::NetworkConfig net = sim::NetworkConfig::uniform(n, 0.02, 2e6);
  net.egress[3] = sim::Trace::constant(0.2e6);
  net.ingress[3] = sim::Trace::constant(0.2e6);
  Cluster c(net);
  for (int i = 0; i < n; ++i) {
    auto cfg = NodeConfig::honey_badger(n, f, i);
    cfg.max_block_bytes = 100'000;
    cfg.backlog_tx_bytes = 250;
    c.add_node(cfg);
  }
  c.sim.run_until(40.0);
  std::uint64_t dropped = 0;
  for (auto* node : c.nodes) dropped += node->stats().own_blocks_dropped;
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(c.nodes[3]->stats().reproposed_tx, 0u);
  c.expect_all_logs_consistent();
}

TEST(DlNode, BadDisperserYieldsConsistentBadBlocks) {
  // A Byzantine proposer dispersing inconsistent encodings: all correct
  // nodes must agree on the BAD_UPLOADER outcome and keep making progress.
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < 3; ++i) {
    auto cfg = with_small_blocks(NodeConfig::dispersed_ledger(n, f, i));
    cfg.backlog_tx_bytes = 250;
    cfg.max_block_bytes = 50'000;
    c.add_node(cfg);
  }
  c.add_node(with_small_blocks(adversary::bad_disperser_config(n, f, 3)));
  c.sim.run_until(30.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(c.nodes[static_cast<std::size_t>(i)]->stats().delivered_payload_bytes, 0u);
    EXPECT_GT(c.nodes[static_cast<std::size_t>(i)]->stats().bad_uploader_blocks, 0u);
  }
  c.expect_all_logs_consistent();
}

TEST(DlNode, VLiarCannotStallLinking) {
  // A proposer reporting inflated V arrays: the (f+1)-th-largest rule must
  // clip its lies; the system keeps delivering and logs stay consistent.
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < 3; ++i) {
    auto cfg = with_small_blocks(NodeConfig::dispersed_ledger(n, f, i));
    cfg.backlog_tx_bytes = 250;
    cfg.max_block_bytes = 50'000;
    c.add_node(cfg);
  }
  c.add_node(with_small_blocks(adversary::v_liar_config(n, f, 3)));
  c.sim.run_until(30.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(c.logs[static_cast<std::size_t>(i)].size(), 10u);
  }
  c.expect_all_logs_consistent();
}

TEST(DlNode, DlCoupledProposesEmptyWhenBehind) {
  // DL-Coupled on a slow node: when retrieval lags, the node participates
  // with empty blocks (spam defense of §4.5).
  const int n = 4, f = 1;
  sim::NetworkConfig net = sim::NetworkConfig::uniform(n, 0.02, 3e6);
  net.egress[0] = sim::Trace::constant(0.25e6);
  net.ingress[0] = sim::Trace::constant(0.25e6);
  Cluster c(net);
  for (int i = 0; i < n; ++i) {
    auto cfg = NodeConfig::dl_coupled(n, f, i);
    cfg.max_block_bytes = 100'000;
    cfg.backlog_tx_bytes = 250;
    c.add_node(cfg);
  }
  c.sim.run_until(40.0);
  EXPECT_GT(c.nodes[0]->stats().proposed_empty_blocks, 0u);
  c.expect_all_logs_consistent();
}

TEST(DlNode, FallBehindStopThrottlesProposals) {
  const int n = 4, f = 1;
  sim::NetworkConfig net = sim::NetworkConfig::uniform(n, 0.02, 3e6);
  net.egress[0] = sim::Trace::constant(0.25e6);
  net.ingress[0] = sim::Trace::constant(0.25e6);
  Cluster c(net);
  for (int i = 0; i < n; ++i) {
    auto cfg = NodeConfig::dispersed_ledger(n, f, i);
    cfg.max_block_bytes = 100'000;
    cfg.backlog_tx_bytes = 250;
    cfg.fall_behind_stop = (i == 0) ? 3 : 0;  // P=3 for the slow node
    c.add_node(cfg);
  }
  c.sim.run_until(40.0);
  // The slow node must not have dispersed more than P epochs past its
  // delivery frontier (+1: the gate is checked before each proposal).
  const auto& s = c.nodes[0]->stats();
  EXPECT_LE(s.current_dispersal_epoch, c.nodes[0]->next_epoch_to_deliver() + 4);
  c.expect_all_logs_consistent();
}

TEST(DlNode, EpochsAdvanceWithoutRetrievalInDL) {
  // The core decoupling claim: a DL node participates in dispersal for
  // epochs far beyond what it has retrieved.
  const int n = 4, f = 1;
  sim::NetworkConfig net = sim::NetworkConfig::uniform(n, 0.02, 3e6);
  net.egress[0] = sim::Trace::constant(0.3e6);
  net.ingress[0] = sim::Trace::constant(0.3e6);
  Cluster c(net);
  for (int i = 0; i < n; ++i) {
    auto cfg = NodeConfig::dispersed_ledger(n, f, i);
    cfg.max_block_bytes = 150'000;
    cfg.backlog_tx_bytes = 250;
    c.add_node(cfg);
  }
  c.sim.run_until(30.0);
  const auto& slow = c.nodes[0]->stats();
  EXPECT_GT(slow.current_dispersal_epoch, c.nodes[0]->next_epoch_to_deliver() + 2);
}

TEST(DlNode, FingerprintsMatchAtEqualBlockCounts) {
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < n; ++i) {
    auto cfg = with_small_blocks(NodeConfig::dispersed_ledger(n, f, i));
    cfg.backlog_tx_bytes = 250;
    cfg.max_block_bytes = 40'000;
    c.add_node(cfg);
  }
  c.sim.run_until(20.0);
  // If two nodes delivered the same number of blocks, their delivery-chain
  // fingerprints must be identical.
  for (int i = 1; i < n; ++i) {
    if (c.nodes[0]->stats().delivered_blocks ==
        c.nodes[static_cast<std::size_t>(i)]->stats().delivered_blocks) {
      EXPECT_EQ(c.nodes[0]->delivery_fingerprint(),
                c.nodes[static_cast<std::size_t>(i)]->delivery_fingerprint());
    }
  }
  c.expect_all_logs_consistent();
}

TEST(DlNode, NoLoadStillLive) {
  // Zero transactions: epochs tick with empty blocks, nothing crashes, and
  // no payload is "confirmed".
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 1e6));
  for (int i = 0; i < n; ++i) c.add_node(NodeConfig::dispersed_ledger(n, f, i));
  c.sim.run_until(5.0);
  for (auto* node : c.nodes) {
    EXPECT_GT(node->stats().delivered_epochs, 0u);
    EXPECT_EQ(node->stats().delivered_payload_bytes, 0u);
  }
  c.expect_all_logs_consistent();
}

TEST(DlNode, GarbageMessagesIgnored) {
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < n; ++i) c.add_node(with_small_blocks(NodeConfig::dispersed_ledger(n, f, i)));
  // Inject garbage directly into node 0 at various times.
  for (int k = 0; k < 20; ++k) {
    c.sim.queue().at(0.1 * k, [&c, k] {
      sim::Message m;
      m.from = 3;
      m.to = 0;
      m.payload = std::make_shared<Bytes>(random_bytes(64, static_cast<std::uint64_t>(k)));
      c.sim.network().send(std::move(m));
    });
  }
  c.nodes[0]->submit(bytes_of("real-tx"));
  c.sim.run_until(10.0);
  EXPECT_GT(c.nodes[1]->stats().delivered_payload_bytes, 0u);
  c.expect_all_logs_consistent();
}

TEST(DlNode, AbsurdEpochMessageBounded) {
  // A message naming an absurd epoch must not blow up memory or crash.
  const int n = 4, f = 1;
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < n; ++i) c.add_node(NodeConfig::dispersed_ledger(n, f, i));
  c.sim.queue().at(0.5, [&c] {
    Envelope env;
    env.kind = MsgKind::BaBval;
    env.epoch = 1'000'000'000;
    env.instance = 0;
    env.body = ba::BaRoundMsg{0, true}.encode();
    sim::Message m;
    m.from = 3;
    m.to = 0;
    m.payload = std::make_shared<Bytes>(env.encode());
    c.sim.network().send(std::move(m));
  });
  c.sim.run_until(5.0);
  for (auto* node : c.nodes) EXPECT_GT(node->stats().delivered_epochs, 0u);
}

// --- durable store: recovery replay and VID-coded catch-up ------------------

struct StoreDirs {
  std::string root;
  StoreDirs() {
    char tmpl[] = "/tmp/dl_catchup_test.XXXXXX";
    root = mkdtemp(tmpl);
  }
  ~StoreDirs() { std::filesystem::remove_all(root); }
  std::string node_dir(int i) const { return root + "/n" + std::to_string(i); }
};

NodeConfig with_catch_up(NodeConfig c) {
  c = with_small_blocks(c);
  c.catch_up_interval = 0.2;
  return c;
}

std::unique_ptr<storage::LedgerStore> open_store(const std::string& dir) {
  std::string err;
  auto store = storage::LedgerStore::open(dir, {}, &err);
  EXPECT_NE(store, nullptr) << err;
  return store;
}

TEST(DlNodeStore, RecoveryReplaysFingerprintAndStats) {
  // Phase 1: a live cluster commits a prefix into per-node stores.
  const int n = 4, f = 1;
  StoreDirs dirs;
  Hash fp;
  NodeStats live{};
  {
    std::vector<std::unique_ptr<storage::LedgerStore>> stores;
    Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
    for (int i = 0; i < n; ++i) {
      DlNode* node = c.add_node(
          with_small_blocks(NodeConfig::dispersed_ledger(n, f, i)));
      stores.push_back(open_store(dirs.node_dir(i)));
      ASSERT_NE(stores.back(), nullptr);
      node->attach_store(stores.back().get());
    }
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < 30; ++k) {
        DlNode* node = c.nodes[static_cast<std::size_t>(i)];
        c.sim.queue().at(0.05 * k, [node, i, k] {
          node->submit(
              random_bytes(2000, static_cast<std::uint64_t>(i * 1000 + k)));
        });
      }
    }
    c.sim.run_until(10.0);
    ASSERT_GT(c.nodes[1]->stats().delivered_epochs, 5u);
    fp = c.nodes[1]->delivery_fingerprint();
    live = c.nodes[1]->stats();
    EXPECT_EQ(stores[1]->delivered_frontier(), live.delivered_epochs);
  }
  // Phase 2: a cold restart of node 1. attach_store alone — before any
  // message or timer — must rebuild the delivery state the live run had:
  // the fingerprint chain is hashed over the recovered bytes, so equality
  // proves the store returned every delivered block byte-identically and
  // in delivery order.
  auto store = open_store(dirs.node_dir(1));
  ASSERT_NE(store, nullptr);
  sim::Simulator sim2(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  runtime::SimEnv env2(sim2, 1);
  DlNode node(with_small_blocks(NodeConfig::dispersed_ledger(n, f, 1)), env2);
  node.attach_store(store.get());
  EXPECT_EQ(node.delivery_fingerprint(), fp);
  EXPECT_EQ(node.stats().delivered_epochs, live.delivered_epochs);
  EXPECT_EQ(node.stats().recovered_epochs, live.delivered_epochs);
  EXPECT_EQ(node.stats().delivered_blocks, live.delivered_blocks);
  EXPECT_EQ(node.stats().delivered_linked_blocks, live.delivered_linked_blocks);
  EXPECT_EQ(node.stats().delivered_payload_bytes, live.delivered_payload_bytes);
  EXPECT_EQ(node.stats().delivered_tx_count, live.delivered_tx_count);
}

TEST(DlNodeStore, LateJoinerCatchesUpViaCodedChunks) {
  // Nodes 0..2 run (and persist) from t=0; node 3 is dark until t=8, then
  // joins with an EMPTY store. It must discover the committed frontier,
  // pull coded chunks from f+1-agreeing peers for every missed epoch,
  // install them in delivery order, and then keep up LIVE through BA.
  const int n = 4, f = 1;
  StoreDirs dirs;
  std::vector<std::unique_ptr<storage::LedgerStore>> stores(4);
  Cluster c(sim::NetworkConfig::uniform(n, 0.02, 2e6));
  for (int i = 0; i < 3; ++i) {
    DlNode* node =
        c.add_node(with_catch_up(NodeConfig::dispersed_ledger(n, f, i)));
    stores[static_cast<std::size_t>(i)] = open_store(dirs.node_dir(i));
    ASSERT_NE(stores[static_cast<std::size_t>(i)], nullptr);
    node->attach_store(stores[static_cast<std::size_t>(i)].get());
  }
  c.add_crashed(3);
  // Load on the live nodes until t=20 (the run ends at t=30, so the joiner
  // also sees a stretch of live traffic after it has caught up).
  for (int i = 0; i < 3; ++i) {
    for (int k = 0; k < 80; ++k) {
      DlNode* node = c.nodes[static_cast<std::size_t>(i)];
      c.sim.queue().at(0.25 * k, [node, i, k] {
        node->submit(
            random_bytes(2000, static_cast<std::uint64_t>(i * 1000 + k)));
      });
    }
  }
  c.sim.queue().at(8.0, [&] {
    DlNode* node =
        c.add_node(with_catch_up(NodeConfig::dispersed_ledger(n, f, 3)));
    stores[3] = open_store(dirs.node_dir(3));
    if (stores[3] == nullptr) return;
    node->attach_store(stores[3].get());
    c.envs.back()->start();  // mid-run attach: fire start() ourselves
  });
  c.sim.run_until(30.0);

  DlNode* joiner = c.nodes[3];
  ASSERT_NE(joiner, nullptr);
  const NodeStats& js = joiner->stats();
  EXPECT_EQ(js.recovered_epochs, 0u);  // store was empty
  EXPECT_GT(js.catch_up_rounds, 0u);
  EXPECT_GT(js.caught_up_epochs, 0u);
  EXPECT_GT(js.caught_up_blocks, 0u);
  // Caught up to (within a breath of) the live frontier...
  EXPECT_GE(js.delivered_epochs + 8, c.nodes[0]->stats().delivered_epochs);
  // ...and delivered epochs through live BA beyond what catch-up installed.
  EXPECT_GT(js.delivered_epochs, js.caught_up_epochs);
  // Full-history agreement: the joiner reconstructed the ledger from epoch
  // 0, so its whole delivery log must match a node that lived through it.
  ASSERT_GT(c.logs[3].size(), 10u);
  Cluster::expect_prefix_consistent(c.logs[0], c.logs[3]);
  // Everything it pulled is in its own store, ready to serve others.
  EXPECT_EQ(stores[3]->delivered_frontier(), js.delivered_epochs);
}

}  // namespace
}  // namespace dl::core
