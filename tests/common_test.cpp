// Unit tests for the common substrate: bytes, hex, rng, serialization.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"

namespace dl {
namespace {

TEST(Bytes, StringRoundTrip) {
  const Bytes b = bytes_of("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, AppendAndEqual) {
  Bytes a = bytes_of("foo");
  append(a, bytes_of("bar"));
  EXPECT_EQ(to_string(a), "foobar");
  EXPECT_TRUE(equal(a, bytes_of("foobar")));
  EXPECT_FALSE(equal(a, bytes_of("foobaz")));
  EXPECT_FALSE(equal(a, bytes_of("foo")));
}

TEST(Bytes, RandomBytesDeterministic) {
  const Bytes a = random_bytes(1000, 42);
  const Bytes b = random_bytes(1000, 42);
  const Bytes c = random_bytes(1000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 1000u);
}

TEST(Bytes, RandomBytesOddSizes) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u}) {
    EXPECT_EQ(random_bytes(n, 1).size(), n);
  }
}

TEST(Hex, RoundTrip) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(b), "0001abff");
  auto back = from_hex("0001abff");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, b);
}

TEST(Hex, UpperCaseAccepted) {
  auto v = from_hex("DEADBEEF");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(to_hex(*v), "deadbeef");
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // non-hex
}

TEST(Rng, Deterministic) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(Rng(7).next(), c.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(123);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, GaussianMoments) {
  Rng r(99);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng r(100);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Serial, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.done());
}

TEST(Serial, BytesRoundTrip) {
  Writer w;
  w.bytes(bytes_of("payload"));
  w.bytes({});
  Reader r(w.data());
  EXPECT_EQ(to_string(r.bytes()), "payload");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.done());
}

TEST(Serial, TruncatedInputFailsSafely) {
  Writer w;
  w.u64(1);
  Bytes data = w.data();
  data.pop_back();
  Reader r(data);
  r.u64();
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  // Further reads on a failed reader stay failed and return zero.
  EXPECT_EQ(r.u32(), 0u);
}

TEST(Serial, LengthPrefixOverrunFails) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  Reader r(w.data());
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Serial, RawReads) {
  Writer w;
  w.raw(bytes_of("abc"));
  Reader r(w.data());
  EXPECT_EQ(to_string(r.raw(3)), "abc");
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace dl
