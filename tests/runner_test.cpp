// Experiment runner: end-to-end sanity of the measurement harness that all
// figure benches build on.
#include <gtest/gtest.h>

#include "runner/experiment.hpp"
#include "workload/topology.hpp"

namespace dl::runner {
namespace {

ExperimentConfig small_cfg(Protocol proto) {
  ExperimentConfig cfg;
  cfg.protocol = proto;
  cfg.n = 4;
  cfg.f = 1;
  cfg.net = sim::NetworkConfig::uniform(4, 0.02, 2e6);
  cfg.duration = 20.0;
  cfg.warmup = 5.0;
  cfg.max_block_bytes = 100'000;
  cfg.seed = 1;
  return cfg;
}

TEST(Runner, BacklogThroughputPositive) {
  for (Protocol proto : {Protocol::DL, Protocol::HB, Protocol::HBLink, Protocol::DLCoupled}) {
    const auto res = run_experiment(small_cfg(proto));
    EXPECT_GT(res.aggregate_throughput_bps, 100'000.0) << to_string(proto);
    for (const auto& node : res.nodes) {
      EXPECT_GT(node.throughput_bps, 0.0) << to_string(proto);
      EXPECT_GT(node.stats.delivered_epochs, 0u) << to_string(proto);
    }
  }
}

TEST(Runner, PoissonLoadLatencyRecorded) {
  auto cfg = small_cfg(Protocol::DL);
  cfg.load_bytes_per_sec = 100'000;  // well under capacity
  const auto res = run_experiment(cfg);
  for (const auto& node : res.nodes) {
    ASSERT_FALSE(node.latency_local.empty());
    ASSERT_FALSE(node.latency_all.empty());
    // Under light load latency should be sub-5s and above one RTT-ish.
    EXPECT_LT(node.latency_local.quantile(0.5), 5.0);
    EXPECT_GT(node.latency_local.quantile(0.5), 0.01);
    // All-tx samples include every node's txs.
    EXPECT_GT(node.latency_all.count(), node.latency_local.count());
  }
}

TEST(Runner, DispersalFractionSmallForDl) {
  auto cfg = small_cfg(Protocol::DL);
  const auto res = run_experiment(cfg);
  // Dispersal (high-priority) traffic must be a minority share: the bulk is
  // retrieval. (Paper reports 1/20-1/10 at larger scale; at N=4 the coding
  // overhead is larger, so just require < 50%.)
  EXPECT_GT(res.mean_dispersal_fraction, 0.0);
  EXPECT_LT(res.mean_dispersal_fraction, 0.5);
}

TEST(Runner, CrashedNodesExcluded) {
  auto cfg = small_cfg(Protocol::DL);
  cfg.crashed = {3};
  const auto res = run_experiment(cfg);
  EXPECT_EQ(res.nodes[3].throughput_bps, 0.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(res.nodes[static_cast<std::size_t>(i)].throughput_bps, 0.0);
  }
}

TEST(Runner, TimeSeriesMonotone) {
  const auto res = run_experiment(small_cfg(Protocol::DL));
  for (const auto& node : res.nodes) {
    double prev = -1;
    for (const auto& [t, v] : node.confirmed.points()) {
      EXPECT_GE(v, prev);
      prev = v;
    }
    EXPECT_GE(node.confirmed.points().size(), 20u);
  }
}

TEST(Runner, DeterministicAcrossRuns) {
  const auto a = run_experiment(small_cfg(Protocol::DL));
  const auto b = run_experiment(small_cfg(Protocol::DL));
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_bps, b.aggregate_throughput_bps);
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].stats.delivered_blocks, b.nodes[i].stats.delivered_blocks);
    EXPECT_EQ(a.nodes[i].egress_low, b.nodes[i].egress_low);
  }
}

TEST(Runner, GeoTopologyRuns) {
  ExperimentConfig cfg;
  cfg.protocol = Protocol::DL;
  cfg.n = 16;
  cfg.f = 5;
  // Scale bandwidth down hard to keep this test fast.
  cfg.net = workload::Topology::aws_geo16().network(30.0, 0.05);
  cfg.duration = 20.0;
  cfg.warmup = 5.0;
  cfg.max_block_bytes = 60'000;
  const auto res = run_experiment(cfg);
  EXPECT_GT(res.aggregate_throughput_bps, 0.0);
  // The heavily-downscaled bandwidth means the slowest sites may not confirm
  // anything inside the short measurement window; most sites must.
  int positive = 0;
  for (const auto& node : res.nodes) positive += node.throughput_bps > 0 ? 1 : 0;
  EXPECT_GE(positive, 12);
}

TEST(Runner, ProtocolNames) {
  EXPECT_EQ(to_string(Protocol::DL), "DL");
  EXPECT_EQ(to_string(Protocol::DLCoupled), "DL-Coupled");
  EXPECT_EQ(to_string(Protocol::HB), "HB");
  EXPECT_EQ(to_string(Protocol::HBLink), "HB-Link");
}

}  // namespace
}  // namespace dl::runner
