// DLEpoch bookkeeping: BA output tracking, commit-set formation, VID
// completion edge detection.
#include <gtest/gtest.h>

#include "dl/epoch.hpp"

namespace dl::core {
namespace {

DLEpoch make_epoch(int n = 4, int f = 1) {
  static ba::CommonCoin coin(1);
  return DLEpoch(0, n, f, 0, coin);
}

TEST(DLEpoch, CommitSetAfterAllOutputs) {
  DLEpoch ep = make_epoch();
  EXPECT_FALSE(ep.all_ba_output());
  // Drive each BA to a decision via f+1 DONE messages (the adoption path).
  for (int inst = 0; inst < 4; ++inst) {
    const bool value = inst != 2;  // BA 2 decides 0
    Outbox out;
    ba::BaDoneMsg done{value};
    ep.ba(inst).handle(1, MsgKind::BaDone, done.encode(), out);
    ep.ba(inst).handle(3, MsgKind::BaDone, done.encode(), out);
    EXPECT_TRUE(ep.ba(inst).decided());
  }
  EXPECT_TRUE(ep.refresh_ba_outputs());
  EXPECT_TRUE(ep.all_ba_output());
  EXPECT_EQ(ep.decided_count(), 4);
  EXPECT_EQ(ep.one_count(), 3);
  EXPECT_EQ(ep.commit_set(), (std::vector<int>{0, 1, 3}));
  // Idempotent refresh.
  EXPECT_FALSE(ep.refresh_ba_outputs());
}

TEST(DLEpoch, VidCompleteNotedOnce) {
  DLEpoch ep = make_epoch();
  EXPECT_FALSE(ep.note_vid_complete_once(1));  // not complete yet

  // Complete VID 1 via 2f+1 Ready messages.
  const Hash root = sha256(bytes_of("root"));
  Outbox out;
  vid::RootMsg ready{root};
  for (int from : {0, 2, 3}) {
    ep.vid(1).handle(from, MsgKind::VidReady, ready.encode(), out);
  }
  ASSERT_TRUE(ep.vid(1).complete());
  EXPECT_TRUE(ep.note_vid_complete_once(1));
  EXPECT_FALSE(ep.note_vid_complete_once(1));  // edge already consumed
  EXPECT_FALSE(ep.note_vid_complete_once(0));  // other instance untouched
}

TEST(DLEpoch, InstancesAreIndependent) {
  DLEpoch ep = make_epoch();
  Outbox out;
  ep.ba(0).input(true, out);
  EXPECT_TRUE(ep.ba_input_done(0));
  EXPECT_FALSE(ep.ba_input_done(1));
}

}  // namespace
}  // namespace dl::core
