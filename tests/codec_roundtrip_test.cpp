// Full serialization round-trips: every protocol message type, wrapped in an
// Envelope, framed for the TCP transport, unframed, and decoded back must be
// the identity — byte-for-byte. This is the contract that lets the simulator
// backend and the TCP backend interoperate with the same protocol logic.
#include <gtest/gtest.h>

#include <algorithm>

#include "ba/binary_agreement.hpp"
#include "common/envelope.hpp"
#include "dl/block.hpp"
#include "dl/catchup.hpp"
#include "net/frame.hpp"
#include "vid/avid_fp.hpp"
#include "vid/avid_m.hpp"

namespace dl {
namespace {

struct Sample {
  const char* name;
  MsgKind kind;
  Bytes body;
};

// One valid body per protocol message kind (empty-bodied kinds included).
std::vector<Sample> all_samples() {
  std::vector<Sample> s;
  const vid::Params p{7, 2};
  const Bytes block_bytes = random_bytes(1234, 99);

  const auto chunks = vid::avid_m_disperse(p, block_bytes);
  s.push_back({"VidChunk", MsgKind::VidChunk, chunks[0].encode()});
  const Hash root = chunks[0].root;
  s.push_back({"VidGotChunk", MsgKind::VidGotChunk, vid::RootMsg{root}.encode()});
  s.push_back({"VidReady", MsgKind::VidReady, vid::RootMsg{root}.encode()});
  s.push_back({"VidRequestChunk", MsgKind::VidRequestChunk, {}});
  s.push_back({"VidReturnChunk", MsgKind::VidReturnChunk, chunks[3].encode()});
  s.push_back({"VidCancel", MsgKind::VidCancel, {}});

  s.push_back({"BaBval", MsgKind::BaBval, ba::BaRoundMsg{5, true}.encode()});
  s.push_back({"BaAux", MsgKind::BaAux, ba::BaRoundMsg{2, false}.encode()});
  s.push_back({"BaDone", MsgKind::BaDone, ba::BaDoneMsg{true}.encode()});

  const auto fp_chunks = vid::avid_fp_disperse(p, block_bytes);
  s.push_back({"FpChunk", MsgKind::FpChunk, fp_chunks[1].encode()});
  s.push_back({"FpEcho", MsgKind::FpEcho,
               vid::FpChecksumMsg{fp_chunks[1].checksum}.encode()});
  s.push_back({"FpReady", MsgKind::FpReady,
               vid::FpChecksumMsg{fp_chunks[2].checksum}.encode()});
  s.push_back({"FpRequestChunk", MsgKind::FpRequestChunk, {}});
  s.push_back({"FpReturnChunk", MsgKind::FpReturnChunk, fp_chunks[4].encode()});

  // A block payload as dispersed by a proposer (travels inside VidChunk
  // bodies, but its own codec must round-trip too).
  core::Block b;
  b.v_array = {3, 1, 4, 1, 5, 9, 2};
  for (int i = 0; i < 5; ++i) {
    core::Transaction tx;
    tx.submit_time = 0.25 * i;
    tx.origin = static_cast<std::uint32_t>(i);
    tx.payload = random_bytes(40 + static_cast<std::size_t>(i), static_cast<std::uint64_t>(i));
    b.txs.push_back(std::move(tx));
  }
  s.push_back({"Block-as-body", MsgKind::VidChunk, b.encode()});

  // Catch-up (crash-recovery bootstrap) kinds.
  s.push_back({"CatchUpRequest", MsgKind::CatchUpRequest,
               core::CatchUpRequestMsg{42, 64}.encode()});
  core::CatchUpChunkMsg cu;
  cu.round_from = 42;
  cu.at_epoch = 43;
  cu.block_count = 3;
  cu.block_index = 2;
  cu.block_epoch = 43;
  cu.proposer = 5;
  cu.chunk = chunks[4];
  s.push_back({"CatchUpChunk", MsgKind::CatchUpChunk, cu.encode()});
  core::CatchUpChunkMsg empty_epoch;  // zero-block epoch announcement
  empty_epoch.round_from = 42;
  empty_epoch.at_epoch = 44;
  s.push_back({"CatchUpChunk-empty", MsgKind::CatchUpChunk, empty_epoch.encode()});
  s.push_back({"CatchUpDone", MsgKind::CatchUpDone,
               core::CatchUpDoneMsg{42, 99}.encode()});
  return s;
}

// encode -> frame -> unframe -> decode == identity, fed in awkward chunks.
TEST(CodecRoundTrip, EveryMessageKindThroughFramedTransport) {
  std::uint64_t chunk_seed = 42;
  for (const Sample& sample : all_samples()) {
    SCOPED_TRACE(sample.name);
    Envelope env;
    env.kind = sample.kind;
    env.epoch = 123456789;
    env.instance = 6;
    env.body = sample.body;
    const Bytes env_bytes = env.encode();
    const Bytes frame = net::encode_data_frame(env_bytes);

    // Feed the frame in pseudo-random splits.
    net::FrameReader reader;
    std::size_t pos = 0;
    Bytes payload;
    bool have = false;
    while (pos < frame.size()) {
      chunk_seed = chunk_seed * 6364136223846793005ULL + 1442695040888963407ULL;
      const std::size_t step = 1 + static_cast<std::size_t>(chunk_seed % 97);
      const std::size_t len = std::min(step, frame.size() - pos);
      ASSERT_TRUE(reader.feed(ByteView(frame.data() + pos, len)));
      pos += len;
      have = reader.next(payload);
      ASSERT_EQ(have, pos == frame.size());
    }
    ASSERT_TRUE(have);

    net::WireFrame wf;
    ASSERT_TRUE(net::decode_wire(payload, wf));
    ASSERT_EQ(wf.kind, net::WireKind::Data);
    ASSERT_TRUE(equal(wf.data, env_bytes));

    const auto decoded = Envelope::decode(wf.data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, env.kind);
    EXPECT_EQ(decoded->epoch, env.epoch);
    EXPECT_EQ(decoded->instance, env.instance);
    EXPECT_EQ(decoded->body, env.body);
    EXPECT_EQ(decoded->encode(), env_bytes);
  }
}

// Typed-body identity: decode the body and re-encode; must reproduce the
// original bytes exactly.
TEST(CodecRoundTrip, TypedBodiesReEncodeIdentically) {
  const vid::Params p{7, 2};
  const Bytes block_bytes = random_bytes(900, 7);

  for (const auto& m : vid::avid_m_disperse(p, block_bytes)) {
    vid::ChunkMsg out;
    ASSERT_TRUE(vid::ChunkMsg::decode(m.encode(), out));
    EXPECT_EQ(out.encode(), m.encode());
  }
  for (const auto& m : vid::avid_fp_disperse(p, block_bytes)) {
    vid::FpChunkMsg out;
    ASSERT_TRUE(vid::FpChunkMsg::decode(m.encode(), out));
    EXPECT_EQ(out.encode(), m.encode());
    vid::FpChecksumMsg cs{m.checksum};
    vid::FpChecksumMsg cs_out;
    ASSERT_TRUE(vid::FpChecksumMsg::decode(cs.encode(), cs_out));
    EXPECT_EQ(cs_out.encode(), cs.encode());
  }
  {
    vid::RootMsg m{sha256(block_bytes)}, out;
    ASSERT_TRUE(vid::RootMsg::decode(m.encode(), out));
    EXPECT_EQ(out.encode(), m.encode());
  }
  for (const bool v : {false, true}) {
    ba::BaRoundMsg m{31, v}, out;
    ASSERT_TRUE(ba::BaRoundMsg::decode(m.encode(), out));
    EXPECT_EQ(out.encode(), m.encode());
    ba::BaDoneMsg d{v}, d_out;
    ASSERT_TRUE(ba::BaDoneMsg::decode(d.encode(), d_out));
    EXPECT_EQ(d_out.encode(), d.encode());
  }
  {
    core::Block b;
    b.v_array = {1, 2, 3, 4, 5, 6, 7};
    core::Transaction tx;
    tx.submit_time = 1.5;
    tx.origin = 3;
    tx.payload = random_bytes(64, 8);
    b.txs.push_back(std::move(tx));
    const auto out = core::Block::decode(b.encode(), 7);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->encode(), b.encode());
  }
  {
    core::CatchUpRequestMsg m{77, 32}, out;
    ASSERT_TRUE(core::CatchUpRequestMsg::decode(m.encode(), out));
    EXPECT_EQ(out.from_epoch, 77u);
    EXPECT_EQ(out.max_epochs, 32u);
    EXPECT_EQ(out.encode(), m.encode());
  }
  {
    core::CatchUpChunkMsg m, out;
    m.round_from = 7;
    m.at_epoch = 9;
    m.block_count = 2;
    m.block_index = 1;
    m.block_epoch = 9;
    m.proposer = 3;
    m.chunk = vid::avid_m_disperse(p, block_bytes)[0];
    ASSERT_TRUE(core::CatchUpChunkMsg::decode(m.encode(), out));
    EXPECT_EQ(out.at_epoch, 9u);
    EXPECT_EQ(out.block_count, 2u);
    EXPECT_EQ(out.chunk.encode(), m.chunk.encode());
    EXPECT_EQ(out.encode(), m.encode());
  }
  {
    core::CatchUpDoneMsg m{7, 123}, out;
    ASSERT_TRUE(core::CatchUpDoneMsg::decode(m.encode(), out));
    EXPECT_EQ(out.round_from, 7u);
    EXPECT_EQ(out.frontier, 123u);
    EXPECT_EQ(out.encode(), m.encode());
  }
}

// Client-plane wire kinds: encode → (split) frame stream → decode is the
// identity on every field, for every kind the ingress plane speaks.
TEST(CodecRoundTrip, ClientWireKindsThroughFramedTransport) {
  struct ClientSample {
    const char* name;
    Bytes frame;  // complete frame (header + payload)
    net::WireKind kind;
  };
  const Bytes payload = random_bytes(333, 5);
  std::vector<ClientSample> samples;
  samples.push_back({"ClientHello", net::encode_client_hello(0xFEEDFACE12345678ULL),
                     net::WireKind::ClientHello});
  samples.push_back({"SubmitTx", net::encode_submit_tx(77, payload),
                     net::WireKind::SubmitTx});
  samples.push_back({"SubmitTx-empty", net::encode_submit_tx(1, {}),
                     net::WireKind::SubmitTx});
  samples.push_back({"TxAck", net::encode_tx_ack(99, net::TxStatus::Duplicate),
                     net::WireKind::TxAck});
  net::StageLatencies stages;
  stages.ingress_us = 11;
  stages.disperse_us = 22;
  stages.ba_us = 33;
  stages.retrieve_us = 44;
  stages.notify_us = 55;
  samples.push_back(
      {"TxCommitted",
       net::encode_tx_committed(12345, 678, 3, 250'000, stages),
       net::WireKind::TxCommitted});
  samples.push_back({"Goodbye", net::encode_goodbye(), net::WireKind::Goodbye});

  // Concatenate and feed in awkward splits; every frame must reappear in
  // order with every field intact.
  Bytes stream;
  for (const auto& s : samples) append(stream, s.frame);
  net::FrameReader reader;
  std::uint64_t chunk_seed = 7;
  std::size_t pos = 0;
  std::size_t next_sample = 0;
  Bytes fr;
  while (pos < stream.size()) {
    chunk_seed = chunk_seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::size_t step = 1 + static_cast<std::size_t>(chunk_seed % 13);
    const std::size_t len = std::min(step, stream.size() - pos);
    ASSERT_TRUE(reader.feed(ByteView(stream.data() + pos, len)));
    pos += len;
    while (reader.next(fr)) {
      ASSERT_LT(next_sample, samples.size());
      SCOPED_TRACE(samples[next_sample].name);
      net::WireFrame wf;
      ASSERT_TRUE(net::decode_wire(fr, wf));
      EXPECT_EQ(wf.kind, samples[next_sample].kind);
      ++next_sample;
    }
  }
  EXPECT_EQ(next_sample, samples.size());

  // Field-exact checks per kind.
  net::WireFrame wf;
  ASSERT_TRUE(net::decode_wire(
      ByteView(samples[0].frame).subspan(net::kFrameHeaderBytes), wf));
  EXPECT_EQ(wf.client_nonce, 0xFEEDFACE12345678ULL);
  ASSERT_TRUE(net::decode_wire(
      ByteView(samples[1].frame).subspan(net::kFrameHeaderBytes), wf));
  EXPECT_EQ(wf.client_seq, 77u);
  ASSERT_TRUE(equal(wf.data, payload));
  ASSERT_TRUE(net::decode_wire(
      ByteView(samples[2].frame).subspan(net::kFrameHeaderBytes), wf));
  EXPECT_EQ(wf.client_seq, 1u);
  EXPECT_TRUE(wf.data.empty());
  ASSERT_TRUE(net::decode_wire(
      ByteView(samples[3].frame).subspan(net::kFrameHeaderBytes), wf));
  EXPECT_EQ(wf.client_seq, 99u);
  EXPECT_EQ(wf.status, net::TxStatus::Duplicate);
  ASSERT_TRUE(net::decode_wire(
      ByteView(samples[4].frame).subspan(net::kFrameHeaderBytes), wf));
  EXPECT_EQ(wf.client_seq, 12345u);
  EXPECT_EQ(wf.epoch, 678u);
  EXPECT_EQ(wf.proposer, 3u);
  EXPECT_EQ(wf.latency_us, 250'000u);
  EXPECT_EQ(wf.stages.ingress_us, 11u);
  EXPECT_EQ(wf.stages.disperse_us, 22u);
  EXPECT_EQ(wf.stages.ba_us, 33u);
  EXPECT_EQ(wf.stages.retrieve_us, 44u);
  EXPECT_EQ(wf.stages.notify_us, 55u);
}

// Malformed client frames must decode to failure, not garbage: bad magic,
// wrong fixed sizes, out-of-range ack status.
TEST(CodecRoundTrip, MalformedClientFramesRejected) {
  net::WireFrame wf;
  // ClientHello with corrupted magic.
  Bytes hello = net::encode_client_hello(42);
  hello[net::kFrameHeaderBytes + 1] ^= 0xFF;
  EXPECT_FALSE(net::decode_wire(
      ByteView(hello).subspan(net::kFrameHeaderBytes), wf));
  // Truncated SubmitTx (seq cut short).
  const Bytes submit = net::encode_submit_tx(7, random_bytes(10, 1));
  EXPECT_FALSE(net::decode_wire(
      ByteView(submit).subspan(net::kFrameHeaderBytes, 5), wf));
  // TxAck with an undefined status byte.
  Bytes ack = net::encode_tx_ack(7, net::TxStatus::Accepted);
  ack.back() = net::kMaxTxStatus + 1;
  EXPECT_FALSE(net::decode_wire(
      ByteView(ack).subspan(net::kFrameHeaderBytes), wf));
  // TxCommitted with a trailing extra byte (fixed-length kind).
  Bytes committed = net::encode_tx_committed(1, 2, 3, 4);
  committed.push_back(0);
  EXPECT_FALSE(net::decode_wire(
      ByteView(committed).subspan(net::kFrameHeaderBytes), wf));
  // Goodbye with a body.
  Bytes goodbye = net::encode_goodbye();
  goodbye.push_back(0);
  EXPECT_FALSE(net::decode_wire(
      ByteView(goodbye).subspan(net::kFrameHeaderBytes), wf));
}

// A whole conversation's worth of frames through one reader preserves
// ordering and content.
TEST(CodecRoundTrip, BackToBackFramesKeepOrder) {
  const auto samples = all_samples();
  Bytes stream;
  for (const Sample& s : samples) {
    Envelope env;
    env.kind = s.kind;
    env.epoch = 1;
    env.instance = 0;
    env.body = s.body;
    append(stream, net::encode_data_frame(env.encode()));
  }
  net::FrameReader reader;
  ASSERT_TRUE(reader.feed(stream));
  for (const Sample& s : samples) {
    SCOPED_TRACE(s.name);
    Bytes payload;
    ASSERT_TRUE(reader.next(payload));
    net::WireFrame wf;
    ASSERT_TRUE(net::decode_wire(payload, wf));
    const auto decoded = Envelope::decode(wf.data);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, s.kind);
    EXPECT_EQ(decoded->body, s.body);
  }
  Bytes leftover;
  EXPECT_FALSE(reader.next(leftover));
}

}  // namespace
}  // namespace dl
