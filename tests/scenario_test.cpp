// Scenario engine: sweep expansion, spec validation, parallel-vs-serial
// determinism, JSON emission, and the bursty-load workload family.
#include <gtest/gtest.h>

#include "runner/report.hpp"
#include "runner/scenario.hpp"

namespace dl::runner {
namespace {

ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.family = "test";
  spec.n = 4;
  spec.topo = TopologySpec::uniform(0.02, 2e6);
  spec.duration = 12.0;
  spec.warmup = 3.0;
  spec.max_block_bytes = 100'000;
  spec.seed = 1;
  return spec;
}

TEST(Sweep, CardinalityIsProductOfAxes) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.protocols = {Protocol::DL, Protocol::HB};
  sweep.loads = {10e3, 20e3, 30e3};
  sweep.seeds = {1, 2, 3, 4, 5};
  EXPECT_EQ(sweep.cardinality(), 2u * 3u * 5u);
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 30u);
}

TEST(Sweep, EmptyAxesFallBackToBase) {
  Sweep sweep;
  sweep.base = small_spec();
  EXPECT_EQ(sweep.cardinality(), 1u);
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].n, 4);
  EXPECT_EQ(specs[0].seed, 1u);
}

TEST(Sweep, ExpansionOrderIsSeedInnermost) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.protocols = {Protocol::DL, Protocol::HB};
  sweep.loads = {10e3, 20e3};
  sweep.seeds = {7, 8};
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 8u);
  // Documented nesting: protocol -> load -> seed (innermost).
  EXPECT_EQ(specs[0].seed, 7u);
  EXPECT_EQ(specs[1].seed, 8u);
  EXPECT_EQ(specs[0].load_bytes_per_sec, 10e3);
  EXPECT_EQ(specs[2].load_bytes_per_sec, 20e3);
  EXPECT_EQ(specs[0].protocol, Protocol::DL);
  EXPECT_EQ(specs[4].protocol, Protocol::HB);
}

TEST(Sweep, VariantsApplyLabelAndMutation) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.variants = {{"big", [](ScenarioSpec& s) { s.max_block_bytes = 500'000; }},
                    {"small", [](ScenarioSpec& s) { s.max_block_bytes = 50'000; }}};
  sweep.seeds = {1, 2};
  const auto specs = sweep.expand();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].variant, "big");
  EXPECT_EQ(specs[0].max_block_bytes, 500'000u);
  EXPECT_EQ(specs[2].variant, "small");
  EXPECT_EQ(specs[2].max_block_bytes, 50'000u);
}

TEST(Validate, AcceptsWellFormedSpec) { EXPECT_EQ(validate(small_spec()), ""); }

TEST(Validate, RejectsMalformedSpecs) {
  auto broken = [](auto mutate) {
    ScenarioSpec spec;
    spec.n = 4;
    spec.topo = TopologySpec::uniform(0.02, 2e6);
    spec.duration = 12.0;
    spec.warmup = 3.0;
    mutate(spec);
    return validate(spec);
  };
  EXPECT_NE(broken([](ScenarioSpec& s) { s.n = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.n = 3; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.f = 2; }), "");  // 3f >= n
  EXPECT_NE(broken([](ScenarioSpec& s) { s.duration = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.warmup = 20.0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.sample_interval = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.load_bytes_per_sec = -1; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.tx_bytes = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) {
              s.load_bytes_per_sec = 10e3;
              s.burst_period = 5.0;
              s.burst_duty = 0;
            }),
            "");
  EXPECT_NE(broken([](ScenarioSpec& s) {
              s.load_bytes_per_sec = 10e3;
              s.burst_period = 5.0;
              s.burst_duty = 1.5;
            }),
            "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.burst_period = 5.0; }), "");  // no load
  EXPECT_NE(broken([](ScenarioSpec& s) { s.max_block_bytes = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.propose_size = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.topo.kind = TopologySpec::Kind::Geo16; }),
            "");  // n != 16
  EXPECT_NE(broken([](ScenarioSpec& s) { s.topo.rate_bps = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.topo.weight_high = 0; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.topo.sigma_frac = -0.1; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) {
              s.topo.kind = TopologySpec::Kind::SlowSubset;
              s.topo.slow_stride = 0;
            }),
            "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.crashed = {7}; }), "");
  EXPECT_NE(broken([](ScenarioSpec& s) { s.v_liars = {-1}; }), "");
}

TEST(SweepRunner, RejectsMalformedSpecUpFront) {
  auto spec = small_spec();
  spec.n = 0;
  SweepRunner pool(1);
  EXPECT_THROW(pool.run({spec}), std::invalid_argument);
}

TEST(SweepRunner, SerialAndParallelProduceIdenticalJson) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.protocols = {Protocol::DL, Protocol::HB};
  sweep.seeds = {1, 2};
  const auto specs = sweep.expand();

  SweepRunner serial(1);
  SweepRunner parallel(4);
  const auto a = serial.run(specs);
  const auto b = parallel.run(specs);
  ASSERT_EQ(a.size(), specs.size());
  // Byte-identical aggregated output for identical seeds is the engine's
  // core guarantee: worker count must not leak into results.
  EXPECT_EQ(json_string("t", a), json_string("t", b));
}

TEST(SweepRunner, RepeatedRunsAreByteIdentical) {
  // The event-core guarantee the perf refactor must preserve: the same sweep
  // (including a bursty-load point that exercises Low-queue ordering and
  // timer churn) serializes to byte-identical JSON on every run, at any
  // worker count. This pins the engine's output so a future scheduler change
  // that reorders same-time events cannot slip through silently.
  Sweep sweep;
  sweep.base = small_spec();
  sweep.base.load_bytes_per_sec = 60e3;
  sweep.protocols = {Protocol::DL, Protocol::HB};
  sweep.seeds = {3};
  auto specs = sweep.expand();
  ScenarioSpec bursty = sweep.base;
  bursty.variant = "bursty";
  bursty.burst_period = 4.0;
  bursty.burst_duty = 0.5;
  specs.push_back(bursty);

  std::vector<std::string> emissions;
  for (int workers : {1, 3, 1}) {
    SweepRunner pool(workers);
    emissions.push_back(json_string("det", pool.run(specs)));
  }
  EXPECT_EQ(emissions[0], emissions[1]);
  EXPECT_EQ(emissions[0], emissions[2]);
}

TEST(SweepRunner, ProgressReportsEveryScenario) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.seeds = {1, 2, 3};
  SweepRunner pool(2);
  std::size_t calls = 0, last_total = 0;
  pool.set_progress([&](const ScenarioSpec&, std::size_t, std::size_t total) {
    ++calls;
    last_total = total;
  });
  pool.run(sweep.expand());
  EXPECT_EQ(calls, 3u);
  EXPECT_EQ(last_total, 3u);
}

TEST(Materialize, TopologyShapes) {
  auto spec = small_spec();
  spec.n = 6;
  spec.topo.kind = TopologySpec::Kind::SpatialRamp;
  spec.topo.rate_bps = 1e6;
  spec.topo.ramp_step_bps = 0.5e6;
  auto cfg = spec.materialize();
  ASSERT_EQ(cfg.net.egress.size(), 6u);
  EXPECT_DOUBLE_EQ(cfg.net.egress[0].rate_at(0), 1e6);
  EXPECT_DOUBLE_EQ(cfg.net.egress[5].rate_at(0), 3.5e6);

  spec.topo.kind = TopologySpec::Kind::SlowSubset;
  spec.topo.slow_stride = 2;
  spec.topo.slow_rate_bps = 0.2e6;
  spec.topo.slow_rate_step_bps = 0.1e6;
  cfg = spec.materialize();
  EXPECT_DOUBLE_EQ(cfg.net.egress[0].rate_at(0), 0.2e6);  // slow #0
  EXPECT_DOUBLE_EQ(cfg.net.egress[1].rate_at(0), 1e6);    // fast
  EXPECT_DOUBLE_EQ(cfg.net.egress[2].rate_at(0), 0.3e6);  // slow #1

  spec.topo.slow_offset = 1;
  cfg = spec.materialize();
  EXPECT_DOUBLE_EQ(cfg.net.egress[0].rate_at(0), 1e6);    // fast now
  EXPECT_DOUBLE_EQ(cfg.net.egress[1].rate_at(0), 0.2e6);  // slow #0 shifted

  // Jittered traces depend on the seed (and differ per node). The mean-rate
  // check is a loose sanity band: at lag-1 correlation 0.98 even a long
  // window has few effective samples.
  spec.topo = TopologySpec::uniform(0.02, 1e6);
  spec.topo.sigma_frac = 0.5;
  spec.duration = 300.0;
  const auto j1 = spec.materialize();
  spec.seed = 99;
  const auto j2 = spec.materialize();
  EXPECT_NE(j1.net.egress[0].rate_at(10.0), j2.net.egress[0].rate_at(10.0));
  EXPECT_NE(j1.net.egress[0].rate_at(10.0), j1.net.egress[1].rate_at(10.0));
  EXPECT_GT(j1.net.egress[0].mean_rate(), 0.1e6);
  EXPECT_LT(j1.net.egress[0].mean_rate(), 3e6);
}

TEST(JsonWriter, EscapesAndFormats) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("s").value("a\"b\\c\nd");
  w.key("d").value(0.1);
  w.key("i").value(-3);
  w.key("u").value(std::uint64_t{18446744073709551615ull});
  w.key("b").value(true);
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.end_object();
  EXPECT_EQ(os.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"d\":0.10000000000000001,\"i\":-3,"
            "\"u\":18446744073709551615,\"b\":true,\"arr\":[1,2]}");
}

TEST(BurstyLoad, DutyCycleThrottlesSubmission) {
  auto on = small_spec();
  on.load_bytes_per_sec = 100e3;
  auto bursty = on;
  bursty.burst_period = 4.0;
  bursty.burst_duty = 0.25;
  SweepRunner pool(1);
  const auto res = pool.run({on, bursty});
  std::size_t full_tx = 0, burst_tx = 0;
  for (const auto& node : res[0].result.nodes) full_tx += node.latency_all.count();
  for (const auto& node : res[1].result.nodes) burst_tx += node.latency_all.count();
  ASSERT_GT(full_tx, 0u);
  ASSERT_GT(burst_tx, 0u);
  // 25% duty should confirm well under half of the always-on transaction count.
  EXPECT_LT(burst_tx * 2, full_tx);
}

TEST(Summarize, GroupsAcrossSeedsOnly) {
  Sweep sweep;
  sweep.base = small_spec();
  sweep.protocols = {Protocol::DL, Protocol::HB};
  sweep.seeds = {1, 2};
  SweepRunner pool(2);
  const auto results = pool.run(sweep.expand());
  const auto rows = summarize(results);
  ASSERT_EQ(rows.size(), 2u);  // one row per protocol, seeds folded
  for (const auto& row : rows) {
    EXPECT_EQ(row.runs, 2);
    EXPECT_GT(row.mean_throughput_bps, 0.0);
    EXPECT_LE(row.min_throughput_bps, row.mean_throughput_bps);
    EXPECT_GE(row.max_throughput_bps, row.mean_throughput_bps);
  }
}

TEST(ScenarioSpec, NameIncludesIdentity) {
  auto spec = small_spec();
  spec.variant = "v1";
  spec.load_bytes_per_sec = 10e3;
  const std::string name = spec.name();
  EXPECT_NE(name.find("test"), std::string::npos);
  EXPECT_NE(name.find("v1"), std::string::npos);
  EXPECT_NE(name.find("DL"), std::string::npos);
  EXPECT_NE(name.find("seed=1"), std::string::npos);
  EXPECT_EQ(spec.name_without_seed().find("seed="), std::string::npos);
}

}  // namespace
}  // namespace dl::runner
