// Block / transaction codec: round-trips, malformed input, payload math.
#include <gtest/gtest.h>

#include "dl/block.hpp"

namespace dl::core {
namespace {

Block sample_block(int n) {
  Block b;
  for (int i = 0; i < n; ++i) b.v_array.push_back(static_cast<std::uint64_t>(i * 7));
  for (int i = 0; i < 5; ++i) {
    Transaction tx;
    tx.submit_time = 1.5 + i;
    tx.origin = static_cast<std::uint32_t>(i);
    tx.payload = random_bytes(100 + static_cast<std::size_t>(i), static_cast<std::uint64_t>(i));
    b.txs.push_back(std::move(tx));
  }
  return b;
}

TEST(Block, RoundTrip) {
  const Block b = sample_block(4);
  auto back = Block::decode(b.encode(), 4);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->v_array, b.v_array);
  ASSERT_EQ(back->txs.size(), b.txs.size());
  for (std::size_t i = 0; i < b.txs.size(); ++i) {
    EXPECT_DOUBLE_EQ(back->txs[i].submit_time, b.txs[i].submit_time);
    EXPECT_EQ(back->txs[i].origin, b.txs[i].origin);
    EXPECT_EQ(back->txs[i].payload, b.txs[i].payload);
  }
}

TEST(Block, EmptyBlock) {
  Block b;
  auto back = Block::decode(b.encode(), 4);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->txs.empty());
  EXPECT_TRUE(back->v_array.empty());
  EXPECT_EQ(back->payload_bytes(), 0u);
}

TEST(Block, VArraySizeMismatchRejected) {
  const Block b = sample_block(4);
  EXPECT_FALSE(Block::decode(b.encode(), 5).has_value());
  EXPECT_TRUE(Block::decode(b.encode(), 4).has_value());
}

TEST(Block, MalformedInputRejected) {
  EXPECT_FALSE(Block::decode(bytes_of("BAD_UPLOADER"), 4).has_value());
  EXPECT_FALSE(Block::decode({}, 4).has_value());
  Bytes truncated = sample_block(4).encode();
  truncated.pop_back();
  EXPECT_FALSE(Block::decode(truncated, 4).has_value());
  Bytes extended = sample_block(4).encode();
  extended.push_back(0);
  EXPECT_FALSE(Block::decode(extended, 4).has_value());
}

TEST(Block, AbsurdTxCountRejected) {
  // Claims 2^31 transactions in a tiny buffer: must fail fast, not allocate.
  Bytes evil;
  evil.push_back(0);  // v_array count = 0 (u32)
  evil.push_back(0);
  evil.push_back(0);
  evil.push_back(0);
  evil.push_back(0xFF);  // tx count
  evil.push_back(0xFF);
  evil.push_back(0xFF);
  evil.push_back(0x7F);
  EXPECT_FALSE(Block::decode(evil, 4).has_value());
}

TEST(Block, PayloadBytes) {
  const Block b = sample_block(4);
  EXPECT_EQ(b.payload_bytes(), 100u + 101 + 102 + 103 + 104);
}

TEST(Transaction, WireSize) {
  Transaction tx;
  tx.payload = Bytes(250, 0);
  EXPECT_EQ(tx.wire_size(), 250u + 16);
}

}  // namespace
}  // namespace dl::core
