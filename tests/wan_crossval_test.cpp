// Sim-vs-real cross-validation: the same piecewise bandwidth trace drives
// both the simulator's FluidLink and the real TcpEnv shaper, and the two
// backends must tell the same story.
//
// Two comparisons, with deliberately different tolerances:
//
// 1. Transport level (tight, ±15%): a saturating sender behind the shaped
//    link. Delivered bytes per trace window must track rate*window on both
//    backends — this is the property the shaper exists to reproduce, and
//    saturation makes it demand-independent.
//
// 2. Protocol level (loose, documented): a full 4-node DispersedLedger
//    cluster over the same trace. In the demand-limited window the legs
//    must agree closely (both commit the offered load). In the saturated
//    window we pin the qualitative shape — goodput collapses on both
//    backends — but only a factor-4 quantitative band, because the fluid
//    model differs structurally from a real TCP stack once queues build:
//    FluidLink shares capacity High:Low at weight_high=30 while TcpEnv
//    drains strict-priority, and the sim applies propagation delay after
//    full serialization while the real shaper's delay stamp is absorbed
//    into queueing. See docs/PERF.md ("Sim-vs-real cross-validation").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dl/node.hpp"
#include "net/event_loop.hpp"
#include "net/tcp_env.hpp"
#include "runtime/sim_env.hpp"
#include "sim/simulator.hpp"

namespace dl {
namespace {

constexpr double kStep = 2.0;          // seconds per trace window
constexpr double kRunFor = 4.0;        // two windows
constexpr double kRateHigh = 250'000;  // bytes/sec
constexpr double kRateLow = 62'500;

// Bytes delivered at the observer, bucketed into kStep-wide windows.
struct Windows {
  std::vector<double> bytes = std::vector<double>(2, 0.0);
  void record(double t, std::size_t n) {
    if (t < 0 || t >= kRunFor) return;
    bytes[static_cast<std::size_t>(t / kStep)] += static_cast<double>(n);
  }
};

net::ClusterConfig shaped_loopback(int n) {
  net::ClusterConfig cfg;
  cfg.n = n;
  cfg.f = (n - 1) / 3;
  for (int i = 0; i < n; ++i) cfg.nodes.push_back({i, "127.0.0.1", 0});
  net::LinkShapeRule rule;  // wildcard: one shared egress bucket per node,
  rule.schedule = net::RateSchedule{{kRateHigh, kRateLow}, kStep};
  cfg.links.push_back(rule);  // mirroring FluidLink's aggregate egress
  return cfg;
}

// ---------------------------------------------------------------------------
// Level 1: saturated point-to-point goodput.

constexpr std::size_t kMsgBody = 4000;
// Enough queued bytes to keep the link saturated for the whole run.
constexpr int kMsgCount = 400;

struct SimSink final : sim::Host {
  sim::Simulator* sim = nullptr;
  Windows win;
  void on_message(sim::Message&& m) override {
    win.record(sim->now(), m.payload ? m.payload->size() : 0);
  }
};

struct SimSource final : sim::Host {
  sim::Simulator* sim = nullptr;
  void start() override {
    auto payload = std::make_shared<const Bytes>(kMsgBody, std::uint8_t{0xA5});
    for (int k = 0; k < kMsgCount; ++k) {
      sim::Message m;
      m.from = 0;
      m.to = 1;
      m.cls = sim::Priority::High;
      m.payload = payload;
      sim->network().send(std::move(m));
    }
  }
  void on_message(sim::Message&&) override {}
};

Windows run_sim_goodput() {
  sim::NetworkConfig net = sim::NetworkConfig::uniform(2, 0.0, 1e9);
  net.egress[0] = sim::Trace({kRateHigh, kRateLow}, kStep);
  sim::Simulator sim(net);
  SimSource src;
  SimSink dst;
  src.sim = &sim;
  dst.sim = &sim;
  sim.attach(0, &src);
  sim.attach(1, &dst);
  sim.run_until(kRunFor + 0.001);
  return dst.win;
}

struct CountingSink final : runtime::Receiver {
  net::EventLoop* loop = nullptr;
  double t0 = 0;
  Windows win;
  void on_receive(int, ByteView bytes) override {
    win.record(loop->now() - t0, bytes.size());
  }
};

struct SilentReceiver final : runtime::Receiver {
  void on_receive(int, ByteView) override {}
};

Windows run_real_goodput() {
  net::EventLoop loop;
  const net::ClusterConfig cfg = shaped_loopback(2);
  net::TcpEnv sender(loop, cfg, 0);
  net::TcpEnv receiver(loop, cfg, 1);
  sender.set_peer_port(1, receiver.listen_port());
  receiver.set_peer_port(0, sender.listen_port());
  SilentReceiver src;
  CountingSink dst;
  dst.loop = &loop;
  dst.t0 = loop.now();
  sender.start(src);
  receiver.start(dst);
  Envelope e;
  e.kind = MsgKind::VidChunk;
  e.body.assign(kMsgBody, std::uint8_t{0xA5});
  for (int k = 0; k < kMsgCount; ++k) sender.send(1, e, {});
  loop.after(kRunFor + 0.05, [&] { loop.stop(); });
  loop.run();
  return dst.win;
}

TEST(WanCrossVal, SaturatedGoodputTracksTraceOnBothBackends) {
  const Windows sim = run_sim_goodput();
  const Windows real = run_real_goodput();
  const double expect[2] = {kRateHigh * kStep, kRateLow * kStep};
  for (int w = 0; w < 2; ++w) {
    const auto i = static_cast<std::size_t>(w);
    // Each backend within 15% of rate*window (payload vs wire framing,
    // bucket burst, and connection setup all eat into this budget)...
    EXPECT_NEAR(sim.bytes[i], expect[w], 0.15 * expect[w]) << "sim window " << w;
    EXPECT_NEAR(real.bytes[i], expect[w], 0.15 * expect[w])
        << "real window " << w;
    // ...and within 15% of each other.
    EXPECT_NEAR(real.bytes[i], sim.bytes[i], 0.15 * sim.bytes[i])
        << "window " << w;
  }
}

// ---------------------------------------------------------------------------
// Level 2: full-protocol trajectories.

constexpr int kN = 4;

core::NodeConfig crossval_node(int i) {
  core::NodeConfig c = core::NodeConfig::dispersed_ledger(kN, 1, i);
  // Offered load sits between the two trace rates: window 0 is
  // demand-limited (≈50 kB/s/node of egress demand vs 250 kB/s capacity
  // once coding overhead is counted), window 1 is saturated.
  c.propose_delay = 0.15;
  c.backlog_tx_bytes = 512;  // self-fill: every block packs to max size
  c.max_block_bytes = 4096;
  return c;
}

Windows run_sim_cluster() {
  sim::NetworkConfig net = sim::NetworkConfig::uniform(kN, 0.02, kRateHigh);
  for (int i = 0; i < kN; ++i) {
    net.egress[static_cast<std::size_t>(i)] =
        sim::Trace({kRateHigh, kRateLow}, kStep);
    // The real shaper paces egress only; make sim ingress a non-factor too.
    net.ingress[static_cast<std::size_t>(i)] = sim::Trace::constant(1e9);
  }
  sim::Simulator sim(net);
  std::vector<std::unique_ptr<runtime::SimEnv>> envs;
  std::vector<std::unique_ptr<core::DlNode>> nodes;
  Windows win;
  for (int i = 0; i < kN; ++i) {
    envs.push_back(std::make_unique<runtime::SimEnv>(sim, i));
    nodes.push_back(std::make_unique<core::DlNode>(crossval_node(i), *envs[i]));
    envs.back()->attach(*nodes.back());
  }
  runtime::Env* env0 = envs[0].get();
  nodes[0]->set_delivery_callback(
      [&win, env0](std::uint64_t, core::BlockKey, const core::Block& b,
                   double) { win.record(env0->now(), b.payload_bytes()); });
  sim.run_until(kRunFor + 0.001);
  return win;
}

Windows run_real_cluster() {
  net::EventLoop loop;
  net::ClusterConfig cfg = shaped_loopback(kN);
  cfg.links[0].delay_ms = 20;  // match the sim's one-way propagation delay
  std::vector<std::unique_ptr<net::TcpEnv>> envs;
  for (int i = 0; i < kN; ++i) {
    envs.push_back(std::make_unique<net::TcpEnv>(loop, cfg, i));
  }
  for (auto& env : envs) {
    for (int j = 0; j < kN; ++j) {
      env->set_peer_port(j, envs[static_cast<std::size_t>(j)]->listen_port());
    }
  }
  std::vector<std::unique_ptr<core::DlNode>> nodes;
  Windows win;
  const double t0 = loop.now();
  for (int i = 0; i < kN; ++i) {
    nodes.push_back(std::make_unique<core::DlNode>(crossval_node(i), *envs[i]));
    if (i == 0) {
      nodes[0]->set_delivery_callback(
          [&win, &loop, t0](std::uint64_t, core::BlockKey,
                            const core::Block& b, double) {
            win.record(loop.now() - t0, b.payload_bytes());
          });
    }
    envs[i]->start(*nodes[i]);
  }
  loop.after(kRunFor + 0.05, [&] { loop.stop(); });
  loop.run();
  return win;
}

TEST(WanCrossVal, ClusterTrajectoriesAgreeWithinDocumentedTolerance) {
  const Windows sim = run_sim_cluster();
  const Windows real = run_real_cluster();

  // Both legs must commit in both windows.
  for (int w = 0; w < 2; ++w) {
    const auto i = static_cast<std::size_t>(w);
    ASSERT_GT(sim.bytes[i], 0.0) << "sim window " << w;
    ASSERT_GT(real.bytes[i], 0.0) << "real window " << w;
  }
  // Demand-limited window: both backends carry the offered load, so the
  // legs agree tightly.
  EXPECT_GE(real.bytes[0], 0.7 * sim.bytes[0]);
  EXPECT_LE(real.bytes[0], 1.43 * sim.bytes[0]);
  // Saturated window: the 4x rate step must be visible on both backends.
  // The fluid model degrades harder (see file header), so the qualitative
  // assertion differs per leg and the quantitative band is wide.
  EXPECT_GT(sim.bytes[0], 1.5 * sim.bytes[1]) << "sim leg missed the step";
  EXPECT_GT(real.bytes[0], real.bytes[1]) << "real leg missed the step";
  const double ratio = real.bytes[1] / sim.bytes[1];
  EXPECT_GE(ratio, 0.5) << "real=" << real.bytes[1] << " sim=" << sim.bytes[1];
  EXPECT_LE(ratio, 4.0) << "real=" << real.bytes[1] << " sim=" << sim.bytes[1];
}

}  // namespace
}  // namespace dl
