// BufferPool / PooledBuf / ByteRope — the pooled allocation layer of the
// replica data plane.
//
// Pins: size-class rounding, same-pointer recycling through the thread
// cache, cross-thread release (acquire on one thread, release on another,
// reacquire on the first), huge-allocation fall-through, ASan poisoning of
// pooled-but-free buffers, and the ByteRope reserve/commit/fill_iovecs/
// consume lifecycle the gateway write path depends on.
#include "net/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DL_TEST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define DL_TEST_ASAN 1
#endif
#if defined(DL_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace dl::net {
namespace {

TEST(BufferPool, RoundsUpToSizeClass) {
  std::size_t cap = 0;
  std::uint8_t* p = BufferPool::acquire_raw(1, cap);
  EXPECT_EQ(cap, BufferPool::kClassBytes[0]);
  BufferPool::release_raw(p, cap);

  p = BufferPool::acquire_raw((4u << 10) + 1, cap);
  EXPECT_EQ(cap, BufferPool::kClassBytes[1]);
  BufferPool::release_raw(p, cap);

  // Exactly a class boundary stays in that class.
  p = BufferPool::acquire_raw(64u << 10, cap);
  EXPECT_EQ(cap, 64u << 10);
  BufferPool::release_raw(p, cap);
}

TEST(BufferPool, RecyclesThroughThreadCache) {
  // Warm the cache, then check release->acquire round-trips recycle the
  // same storage rather than hitting the allocator.
  std::size_t cap = 0;
  std::uint8_t* p = BufferPool::acquire_raw(4096, cap);
  BufferPool::release_raw(p, cap);

  BufferPool::reset_stats();
  std::size_t cap2 = 0;
  std::uint8_t* q = BufferPool::acquire_raw(4096, cap2);
  EXPECT_EQ(q, p);  // same slot back
  EXPECT_EQ(cap2, cap);
  const auto st = BufferPool::stats();
  EXPECT_EQ(st.pool_hits, 1u);
  EXPECT_EQ(st.fresh_allocs, 0u);
  BufferPool::release_raw(q, cap2);
}

TEST(BufferPool, HugeAllocationsBypassThePool) {
  BufferPool::reset_stats();
  const std::size_t huge = BufferPool::kClassBytes[BufferPool::kClasses - 1] + 1;
  std::size_t cap = 0;
  std::uint8_t* p = BufferPool::acquire_raw(huge, cap);
  EXPECT_GE(cap, huge);
  p[0] = 1;
  p[cap - 1] = 2;
  BufferPool::release_raw(p, cap);
  const auto st = BufferPool::stats();
  EXPECT_EQ(st.huge_allocs, 1u);
  EXPECT_EQ(st.pool_hits, 0u);
}

TEST(BufferPool, CrossThreadReleaseReachesTheGlobalPool) {
  // Acquire ON a fresh thread, release on ANOTHER fresh thread; the buffer
  // must flow through the global pool and be reacquirable from a third.
  // Fresh threads sidestep this thread's cache entirely.
  std::uint8_t* acquired = nullptr;
  std::size_t cap = 0;
  std::thread t1([&] {
    // Drain anything cached for this class on the new thread first, then
    // grab one buffer and HAND IT OFF without releasing locally.
    acquired = BufferPool::acquire_raw(1u << 20, cap);
    std::memset(acquired, 0xAB, 64);
  });
  t1.join();
  ASSERT_NE(acquired, nullptr);

  std::thread t2([&] { BufferPool::release_raw(acquired, cap); });
  t2.join();

  // The buffer is now in some free list (t2's cache flushed to the global
  // pool at thread exit). A third thread must be able to get 1MB-class
  // storage without a fresh allocation.
  BufferPool::reset_stats();
  std::thread t3([&] {
    std::size_t c = 0;
    std::uint8_t* p = BufferPool::acquire_raw(1u << 20, c);
    EXPECT_EQ(c, cap);
    BufferPool::release_raw(p, c);
  });
  t3.join();
  EXPECT_GE(BufferPool::stats().pool_hits, 1u);
}

#if defined(DL_TEST_ASAN)
TEST(BufferPool, PooledButFreeBuffersArePoisoned) {
  std::size_t cap = 0;
  std::uint8_t* p = BufferPool::acquire_raw(4096, cap);
  EXPECT_FALSE(__asan_address_is_poisoned(p));
  EXPECT_FALSE(__asan_address_is_poisoned(p + cap - 1));
  BufferPool::release_raw(p, cap);
  // The buffer sits in a free list now: reads/writes would be a bug, and
  // ASan sees the whole span as poisoned until the next acquire.
  EXPECT_TRUE(__asan_address_is_poisoned(p));
  EXPECT_TRUE(__asan_address_is_poisoned(p + cap - 1));
  std::size_t cap2 = 0;
  std::uint8_t* q = BufferPool::acquire_raw(4096, cap2);
  EXPECT_FALSE(__asan_address_is_poisoned(q));
  BufferPool::release_raw(q, cap2);
}
#endif

TEST(PooledBuf, MoveTransfersOwnership) {
  PooledBuf a(4096);
  ASSERT_TRUE(a);
  std::uint8_t* raw = a.data();
  PooledBuf b(std::move(a));
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(b.data(), raw);
  PooledBuf c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move)
}

TEST(ByteRope, ReserveCommitGatherConsume) {
  // Chunk capacities are pool-class-rounded (>= 4K), so multi-chunk ropes
  // need frames in the kilobyte range: the middle frame overflows the first
  // 4K chunk and starts a fresh one.
  ByteRope rope(4096);
  std::vector<std::uint8_t> expect;
  auto put = [&](std::uint8_t tag, std::size_t n) {
    std::uint8_t* w = rope.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = static_cast<std::uint8_t>(tag + i);
      expect.push_back(w[i]);
    }
    rope.commit(n);
  };
  put(1, 3000);
  put(2, 5000);  // does not fit the 4K tail: contiguous in its own chunk
  put(3, 3000);
  EXPECT_EQ(rope.size(), 11000u);

  // Gather the whole rope.
  iovec iov[8];
  const std::size_t cnt = rope.fill_iovecs(iov, 8);
  ASSERT_GE(cnt, 2u);  // must have spilled across chunks
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < cnt; ++i) {
    const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
    got.insert(got.end(), base, base + iov[i].iov_len);
  }
  EXPECT_EQ(got, expect);

  // Partial consume straddling the first chunk boundary.
  rope.consume(3050);
  EXPECT_EQ(rope.size(), 7950u);
  const std::size_t cnt2 = rope.fill_iovecs(iov, 8);
  got.clear();
  for (std::size_t i = 0; i < cnt2; ++i) {
    const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
    got.insert(got.end(), base, base + iov[i].iov_len);
  }
  ASSERT_EQ(got.size(), 7950u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expect.begin() + 3050));

  rope.consume(7950);
  EXPECT_TRUE(rope.empty());
  EXPECT_EQ(rope.fill_iovecs(iov, 8), 0u);
}

TEST(ByteRope, AppendAndClear) {
  ByteRope rope(64);
  Bytes payload(200);
  std::iota(payload.begin(), payload.end(), std::uint8_t{0});
  rope.append(ByteView(payload.data(), payload.size()));
  EXPECT_EQ(rope.size(), 200u);

  iovec iov[8];
  const std::size_t cnt = rope.fill_iovecs(iov, 8);
  std::vector<std::uint8_t> got;
  for (std::size_t i = 0; i < cnt; ++i) {
    const auto* base = static_cast<const std::uint8_t*>(iov[i].iov_base);
    got.insert(got.end(), base, base + iov[i].iov_len);
  }
  EXPECT_TRUE(std::equal(got.begin(), got.end(), payload.begin()));

  rope.clear();
  EXPECT_TRUE(rope.empty());
  EXPECT_EQ(rope.fill_iovecs(iov, 8), 0u);
}

}  // namespace
}  // namespace dl::net
