// Event queue: ordering, tie-breaking, clock semantics.
#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace dl::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.at(3.0, [&] { order.push_back(3); });
  eq.at(1.0, [&] { order.push_back(1); });
  eq.at(2.0, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertion) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.at(1.0, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AfterUsesCurrentTime) {
  EventQueue eq;
  double fired_at = -1;
  eq.at(5.0, [&] {
    eq.after(2.5, [&] { fired_at = eq.now(); });
  });
  eq.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) eq.after(1.0, tick);
  };
  eq.at(0.0, tick);
  eq.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(eq.now(), 99.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue eq;
  int fired = 0;
  eq.at(1.0, [&] { fired++; });
  eq.at(10.0, [&] { fired++; });
  eq.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eq.now(), 5.0);
  EXPECT_EQ(eq.pending(), 1u);
  eq.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.step());
  EXPECT_TRUE(eq.empty());
  eq.at(0.0, [] {});
  EXPECT_TRUE(eq.step());
  EXPECT_FALSE(eq.step());
}

TEST(EventQueue, DeadlineEqualEventRuns) {
  EventQueue eq;
  bool fired = false;
  eq.at(5.0, [&] { fired = true; });
  eq.run_until(5.0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace dl::sim
