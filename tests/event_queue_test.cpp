// Event queue: ordering, tie-breaking, clock semantics, timer cancellation.
#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"

namespace dl::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.at(3.0, [&] { order.push_back(3); });
  eq.at(1.0, [&] { order.push_back(1); });
  eq.at(2.0, [&] { order.push_back(2); });
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertion) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.at(1.0, [&order, i] { order.push_back(i); });
  }
  eq.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, AfterUsesCurrentTime) {
  EventQueue eq;
  double fired_at = -1;
  eq.at(5.0, [&] {
    eq.after(2.5, [&] { fired_at = eq.now(); });
  });
  eq.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue eq;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 100) eq.after(1.0, tick);
  };
  eq.at(0.0, tick);
  eq.run();
  EXPECT_EQ(count, 100);
  EXPECT_DOUBLE_EQ(eq.now(), 99.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue eq;
  int fired = 0;
  eq.at(1.0, [&] { fired++; });
  eq.at(10.0, [&] { fired++; });
  eq.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eq.now(), 5.0);
  EXPECT_EQ(eq.pending(), 1u);
  eq.run_until(20.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.step());
  EXPECT_TRUE(eq.empty());
  eq.at(0.0, [] {});
  EXPECT_TRUE(eq.step());
  EXPECT_FALSE(eq.step());
}

TEST(EventQueue, DeadlineEqualEventRuns) {
  EventQueue eq;
  bool fired = false;
  eq.at(5.0, [&] { fired = true; });
  eq.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue eq;
  bool fired = false;
  TimerHandle h = eq.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(eq.pending(h));
  EXPECT_EQ(eq.pending(), 1u);
  EXPECT_TRUE(eq.cancel(h));
  EXPECT_FALSE(eq.pending(h));
  EXPECT_EQ(eq.pending(), 0u);
  EXPECT_TRUE(eq.empty());
  eq.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndStaleAfterFire) {
  EventQueue eq;
  TimerHandle cancelled = eq.at(1.0, [] {});
  EXPECT_TRUE(eq.cancel(cancelled));
  EXPECT_FALSE(eq.cancel(cancelled));  // double cancel

  TimerHandle fired = eq.at(2.0, [] {});
  eq.run();
  EXPECT_FALSE(eq.cancel(fired));  // already fired
  EXPECT_FALSE(eq.cancel(TimerHandle{}));  // default-constructed
}

TEST(EventQueue, StaleHandleCannotCancelSlotReuser) {
  // After an event fires, its slot is recycled; a handle to the old event
  // must not be able to cancel whatever now occupies the slot.
  EventQueue eq;
  TimerHandle old = eq.at(1.0, [] {});
  eq.run();  // fires, frees the slot
  int fired = 0;
  eq.at(2.0, [&] { ++fired; });  // reuses the slot
  EXPECT_FALSE(eq.cancel(old));
  eq.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelDoesNotDisturbOrdering) {
  EventQueue eq;
  std::vector<int> order;
  eq.at(1.0, [&] { order.push_back(1); });
  TimerHandle h2 = eq.at(2.0, [&] { order.push_back(2); });
  eq.at(2.0, [&] { order.push_back(3); });
  eq.at(3.0, [&] { order.push_back(4); });
  EXPECT_TRUE(eq.cancel(h2));
  eq.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
}

TEST(EventQueue, CancelledEventBeyondDeadlineStopsClock) {
  // A tombstone past the deadline must not drag the clock or fire anything.
  EventQueue eq;
  int fired = 0;
  TimerHandle far = eq.at(10.0, [&] { ++fired; });
  eq.at(1.0, [&] { ++fired; });
  EXPECT_TRUE(eq.cancel(far));
  eq.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(eq.now(), 5.0);
  EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelFromInsideCallback) {
  EventQueue eq;
  int fired = 0;
  TimerHandle victim = eq.at(2.0, [&] { ++fired; });
  eq.at(1.0, [&] { EXPECT_TRUE(eq.cancel(victim)); });
  eq.run();
  EXPECT_EQ(fired, 0);
}

TEST(EventQueue, PastSchedulingClampsToNow) {
  // Release builds clamp a past time to now() (debug builds assert instead;
  // see EventQueue::at).
#ifdef NDEBUG
  EventQueue eq;
  double fired_at = -1;
  eq.at(5.0, [&] {
    eq.at(1.0, [&] { fired_at = eq.now(); });  // 1.0 is in the past
  });
  eq.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
#else
  GTEST_SKIP() << "debug builds assert on past scheduling";
#endif
}

TEST(EventQueue, CancelRescheduleStressMatchesReferenceModel) {
  // Heavy churn of schedule/cancel/reschedule across interleaved times and
  // exact ties, checked event-for-event against a std::multimap reference.
  EventQueue eq;
  Rng rng(2024);
  std::vector<int> fired;             // ids in fire order
  std::multimap<std::pair<double, std::uint64_t>, int> model;  // (t, seq) -> id
  std::vector<TimerHandle> handles(64);
  std::vector<std::uint64_t> model_keys(64, 0);  // seq of each lane's pending event
  std::uint64_t seq = 0;
  int next_id = 0;

  auto schedule = [&](std::size_t lane, double t) {
    const int id = next_id++;
    handles[lane] = eq.at(t, [&fired, id] { fired.push_back(id); });
    model_keys[lane] = seq;
    model.emplace(std::make_pair(t, seq++), id);
  };

  // Seed phase: every lane armed at a coarse-grained time (forcing ties).
  for (std::size_t lane = 0; lane < 64; ++lane) {
    schedule(lane, static_cast<double>(rng.next_below(8)));
  }
  // Churn phase: cancel + rearm random lanes, sometimes at identical times.
  for (int round = 0; round < 2000; ++round) {
    const std::size_t lane = rng.next_below(64);
    // Find and erase the lane's pending event from the model iff the queue
    // agrees it is still pending.
    const bool was_pending = eq.pending(handles[lane]);
    EXPECT_TRUE(was_pending);  // nothing fires during the churn phase
    EXPECT_EQ(eq.cancel(handles[lane]), was_pending);
    for (auto it = model.begin(); it != model.end(); ++it) {
      if (it->first.second == model_keys[lane]) {
        model.erase(it);
        break;
      }
    }
    schedule(lane, static_cast<double>(rng.next_below(8)));
  }

  eq.run();
  std::vector<int> expect;
  for (const auto& [key, id] : model) expect.push_back(id);
  EXPECT_EQ(fired, expect);
  EXPECT_TRUE(eq.empty());
  EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, InterleavedFireAndCancelStress) {
  // Lanes self-reschedule while a controller cancels random lanes mid-run;
  // checks liveness accounting and that no cancelled callback ever runs.
  EventQueue eq;
  Rng rng(7);
  constexpr std::size_t kLanes = 32;
  std::vector<TimerHandle> handles(kLanes);
  std::vector<bool> alive(kLanes, true);
  std::vector<std::uint64_t> fires(kLanes, 0);
  std::uint64_t total = 0;

  std::function<void(std::size_t)> arm = [&](std::size_t lane) {
    handles[lane] = eq.after(1e-3 * static_cast<double>(1 + rng.next_below(50)),
                             [&, lane] {
                               ASSERT_TRUE(alive[lane]) << "cancelled lane fired";
                               ++fires[lane];
                               ++total;
                               arm(lane);
                             });
  };
  for (std::size_t lane = 0; lane < kLanes; ++lane) arm(lane);

  // Controller: every 10ms, kill one live lane and resurrect another.
  std::function<void()> controller = [&] {
    std::size_t lane = rng.next_below(kLanes);
    if (alive[lane]) {
      EXPECT_TRUE(eq.cancel(handles[lane]));
      alive[lane] = false;
    } else {
      alive[lane] = true;
      arm(lane);
    }
    if (eq.now() < 1.0) eq.after(0.01, controller);
  };
  eq.after(0.01, controller);

  eq.run_until(2.0);
  EXPECT_GT(total, 1000u);
  // Only live lanes still have pending timers.
  std::size_t live_lanes = 0;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(eq.pending(handles[lane]), alive[lane]) << lane;
    if (alive[lane]) ++live_lanes;
  }
  EXPECT_EQ(eq.pending(), live_lanes);
}

}  // namespace
}  // namespace dl::sim
