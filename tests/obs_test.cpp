// Observability plane: histogram bucket math against a linear-scan
// reference, registry rendering goldens, concurrent updates under TSan,
// flight-recorder ring semantics, and the admin HTTP responder end-to-end
// over a real socket.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "obs/admin.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/registry.hpp"
#include "obs/relaxed.hpp"
#include "obs/statline.hpp"

namespace dl::obs {
namespace {

// --- Histogram bucket math ---------------------------------------------------

// Reference implementation: the bucket of `v` is the first one whose upper
// bound admits it. O(kBuckets) per lookup, obviously correct.
int reference_bucket(std::uint64_t v) {
  for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
    if (v <= Histogram::upper_bound(i)) return i;
  }
  return Histogram::kBuckets - 1;
}

TEST(HistogramTest, BucketIndexMatchesReferenceExhaustiveLow) {
  for (std::uint64_t v = 0; v <= 200'000; ++v) {
    ASSERT_EQ(Histogram::bucket_index(v), reference_bucket(v)) << "v=" << v;
  }
}

TEST(HistogramTest, BucketIndexMatchesReferenceAtPowerBoundaries) {
  for (int shift = 0; shift < 64; ++shift) {
    const std::uint64_t p = 1ULL << shift;
    for (std::uint64_t v : {p - 1, p, p + 1}) {
      ASSERT_EQ(Histogram::bucket_index(v), reference_bucket(v))
          << "v=" << v;
    }
  }
  ASSERT_EQ(Histogram::bucket_index(UINT64_MAX),
            reference_bucket(UINT64_MAX));
}

TEST(HistogramTest, BucketIndexMatchesReferenceAtBucketBoundaries) {
  for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
    const std::uint64_t hi = Histogram::upper_bound(i);
    ASSERT_EQ(Histogram::bucket_index(hi), i) << "upper_bound(" << i << ")";
    ASSERT_EQ(Histogram::bucket_index(hi + 1), i + 1)
        << "upper_bound(" << i << ")+1";
    if (hi > 0) {
      ASSERT_EQ(Histogram::bucket_index(hi - 1), reference_bucket(hi - 1));
    }
  }
}

TEST(HistogramTest, UpperBoundsStrictlyIncrease) {
  for (int i = 1; i < Histogram::kBuckets - 1; ++i) {
    ASSERT_LT(Histogram::upper_bound(i - 1), Histogram::upper_bound(i));
  }
  ASSERT_EQ(Histogram::upper_bound(Histogram::kBuckets - 1), UINT64_MAX);
}

TEST(HistogramTest, RelativeErrorBounded) {
  // Past the unit buckets, a bucket spans [lo, hi] with width 2^(o-2) and
  // lo >= 2^o, so width/lo <= 1/4 — a midpoint estimate is within 12.5% of
  // any value in the bucket.
  for (int i = Histogram::kUnitBuckets; i < Histogram::kBuckets - 1; ++i) {
    const double lo = static_cast<double>(Histogram::upper_bound(i - 1)) + 1;
    const double hi = static_cast<double>(Histogram::upper_bound(i));
    ASSERT_LE((hi - lo) / lo, 0.25 + 1e-9) << "bucket " << i;
  }
}

TEST(HistogramTest, ObserveAndSnapshot) {
  Histogram h;
  h.observe(3);
  h.observe(10);
  h.observe(10);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.sum, 23u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(3)], 1u);
  EXPECT_EQ(s.buckets[Histogram::bucket_index(10)], 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 23.0 / 3.0);
}

TEST(HistogramTest, QuantileWithinBucketError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.observe(v);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.quantile(0.5), 500.0, 500.0 * 0.13);
  EXPECT_NEAR(s.quantile(0.99), 990.0, 990.0 * 0.13);
  EXPECT_GE(s.quantile(1.0), s.quantile(0.0));
}

// --- Registry rendering ------------------------------------------------------

TEST(RegistryTest, PrometheusGolden) {
  Registry reg;
  reg.counter("test_total", "things done")->set(3);
  reg.gauge("depth", "queue depth")->set(-5);
  Histogram* h = reg.histogram("lat_us", "latency");
  h->observe(3);   // unit bucket, le="3"
  h->observe(10);  // octave 3 sub 1, le="11"
  reg.counter("peered_total", "with labels", "peer=\"1\"")->set(9);
  const std::string text = reg.prometheus_text();
  EXPECT_EQ(text,
            "# HELP test_total things done\n"
            "# TYPE test_total counter\n"
            "test_total 3\n"
            "# HELP depth queue depth\n"
            "# TYPE depth gauge\n"
            "depth -5\n"
            "# HELP lat_us latency\n"
            "# TYPE lat_us histogram\n"
            "lat_us_bucket{le=\"3\"} 1\n"
            "lat_us_bucket{le=\"11\"} 2\n"
            "lat_us_bucket{le=\"+Inf\"} 2\n"
            "lat_us_sum 13\n"
            "lat_us_count 2\n"
            "# HELP peered_total with labels\n"
            "# TYPE peered_total counter\n"
            "peered_total{peer=\"1\"} 9\n");
}

TEST(RegistryTest, StatuszGolden) {
  Registry reg;
  reg.counter("c_total", "c")->set(7);
  reg.gauge("g", "g", "peer=\"2\"")->set(-1);
  reg.histogram("h_us", "h")->observe(4);
  const std::string json = reg.statusz_json(1.5);
  EXPECT_NE(json.find("\"now\": 1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"c_total\": 7"), std::string::npos) << json;
  // The label quotes must be escaped inside the JSON key.
  EXPECT_NE(json.find("\"g{peer=\\\"2\\\"}\": -1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h_us\": {\"count\": 1, \"sum\": 4"),
            std::string::npos)
      << json;
}

TEST(RegistryTest, RegistrationIsIdempotent) {
  Registry reg;
  Counter* a = reg.counter("x_total", "x");
  Counter* b = reg.counter("x_total", "x");
  EXPECT_EQ(a, b);
  Counter* c = reg.counter("x_total", "x", "peer=\"1\"");
  EXPECT_NE(a, c);
  Histogram* h1 = reg.histogram("y_us", "y");
  Histogram* h2 = reg.histogram("y_us", "y");
  EXPECT_EQ(h1, h2);
  // The text must carry ONE family header and both series.
  a->inc();
  c->inc();
  const std::string text = reg.prometheus_text();
  std::size_t helps = 0;
  for (std::size_t p = text.find("# HELP x_total"); p != std::string::npos;
       p = text.find("# HELP x_total", p + 1)) {
    ++helps;
  }
  EXPECT_EQ(helps, 1u);
  EXPECT_NE(text.find("x_total 1"), std::string::npos);
  EXPECT_NE(text.find("x_total{peer=\"1\"} 1"), std::string::npos);
}

TEST(RegistryTest, SampleHookRunsOnRender) {
  Registry reg;
  Counter* c = reg.counter("hooked_total", "set by hook");
  int calls = 0;
  reg.add_sample_hook([&] {
    ++calls;
    c->set(42);
  });
  const std::string text = reg.prometheus_text();
  EXPECT_EQ(calls, 1);
  EXPECT_NE(text.find("hooked_total 42"), std::string::npos);
  reg.statusz_json(0.0);
  EXPECT_EQ(calls, 2);
}

// Exercised under TSan in CI: writers hammer every instrument kind while a
// reader renders both expositions. Nothing here may race or tear.
TEST(RegistryTest, ConcurrentUpdatesAndSnapshots) {
  Registry reg;
  Counter* c = reg.counter("c_total", "c");
  Gauge* g = reg.gauge("g", "g");
  Histogram* h = reg.histogram("h_us", "h");
  constexpr int kThreads = 4;
  constexpr int kPer = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)reg.prometheus_text();
      (void)reg.statusz_json(0.0);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) {
        c->inc();
        g->add(1);
        h->observe(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(c->value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_EQ(g->value(), static_cast<std::int64_t>(kThreads) * kPer);
  EXPECT_EQ(h->snapshot().count, static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(RelaxedU64Test, CopySnapshotsAndArithmetic) {
  RelaxedU64 v;
  ++v;
  v += 5;
  --v;
  v -= 2;
  EXPECT_EQ(v.load(), 3u);
  RelaxedU64 copy = v;  // copy = point-in-time snapshot
  ++v;
  EXPECT_EQ(copy.load(), 3u);
  EXPECT_EQ(static_cast<std::uint64_t>(v), 4u);
}

// --- StatLine ----------------------------------------------------------------

TEST(StatLineTest, Formats) {
  StatLine line;
  line.f("t", 1.5)
      .kv("inflight", 3)
      .kvi("delta", -2)
      .rate("tx", 4, 2.0)
      .rate("stalled", 1, 0.0)
      .ms("p50", 4.25);
  EXPECT_EQ(line.str(), "t=1.5 inflight=3 delta=-2 tx=2.0/s stalled=-/s "
                        "p50=4.2ms");
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorderTest, RingWrapKeepsNewest) {
  FlightRecorder fr(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    fr.record(static_cast<double>(i), FlightRecorder::Ev::kDeliver, i);
  }
  EXPECT_EQ(fr.total_recorded(), 20u);
  EXPECT_EQ(fr.dropped(), 12u);
  const std::vector<FlightRecorder::Event> ev = fr.events();
  ASSERT_EQ(ev.size(), 8u);
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_EQ(ev[i].epoch, 12 + i);  // oldest-first, newest retained
  }
}

TEST(FlightRecorderTest, EventNamesExist) {
  using Ev = FlightRecorder::Ev;
  for (Ev e : {Ev::kPropose, Ev::kVidChunkRx, Ev::kVidComplete, Ev::kBaDecide,
               Ev::kEpochClosed, Ev::kDeliver, Ev::kCatchUpRound,
               Ev::kCatchUpInstall}) {
    ASSERT_NE(FlightRecorder::name(e), nullptr);
    ASSERT_GT(std::strlen(FlightRecorder::name(e)), 0u);
  }
}

// Cheap structural JSON check: quotes balanced, braces/brackets nest and
// close, no trailing garbage. Catches the classic trailing-comma and
// unterminated-string bugs without a JSON dependency.
void expect_balanced_json(const std::string& s) {
  int brace = 0, bracket = 0;
  bool in_str = false, esc = false;
  for (char ch : s) {
    if (esc) {
      esc = false;
      continue;
    }
    if (in_str) {
      if (ch == '\\') esc = true;
      if (ch == '"') in_str = false;
      continue;
    }
    switch (ch) {
      case '"': in_str = true; break;
      case '{': ++brace; break;
      case '}': --brace; break;
      case '[': ++bracket; break;
      case ']': --bracket; break;
      default: break;
    }
    ASSERT_GE(brace, 0);
    ASSERT_GE(bracket, 0);
  }
  EXPECT_FALSE(in_str);
  EXPECT_EQ(brace, 0);
  EXPECT_EQ(bracket, 0);
}

TEST(FlightRecorderTest, ChromeTraceIsValid) {
  FlightRecorder fr(16);
  fr.record(1.5, FlightRecorder::Ev::kPropose, 7, 2, 99);
  fr.record(2.0, FlightRecorder::Ev::kBaDecide, 7, 3, 1);
  const std::string json = fr.chrome_trace_json(/*pid=*/4);
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1500000.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\": 4"), std::string::npos);
  EXPECT_NE(json.find(FlightRecorder::name(FlightRecorder::Ev::kBaDecide)),
            std::string::npos);
  EXPECT_NE(json.find("\"epoch\": 7"), std::string::npos);
}

TEST(FlightRecorderTest, StatuszIsValidJson) {
  Registry reg;
  reg.counter("a_total", "a", "peer=\"0\"")->set(1);
  reg.histogram("b_us", "b")->observe(12);
  expect_balanced_json(reg.statusz_json(3.25));
}

// --- Admin server end-to-end -------------------------------------------------

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: x\r\n\r\n";
  ssize_t off = 0;
  while (off < static_cast<ssize_t>(req.size())) {
    const ssize_t n = write(fd, req.data() + off, req.size() - off);
    if (n <= 0) break;
    off += n;
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  return resp;
}

TEST(AdminServerTest, ServesAllEndpoints) {
  net::EventLoop loop;
  Registry reg;
  reg.counter("served_total", "t")->set(7);
  FlightRecorder fr(16);
  fr.record(0.5, FlightRecorder::Ev::kDeliver, 1);
  AdminServer::Options opt;
  opt.port = 0;  // ephemeral
  opt.pid = 3;
  AdminServer admin(loop, reg, opt);
  admin.set_flight_recorder(&fr);
  const std::uint16_t port = admin.bound_port();
  ASSERT_NE(port, 0);

  std::thread runner([&] { loop.run(); });

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.find("served_total 7"), std::string::npos);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string statusz = http_get(port, "/statusz");
  EXPECT_NE(statusz.find("200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("\"served_total\": 7"), std::string::npos);

  const std::string trace = http_get(port, "/tracez?x=1");
  EXPECT_NE(trace.find("200 OK"), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"pid\": 3"), std::string::npos);

  const std::string missing = http_get(port, "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  loop.post([&] { loop.stop(); });
  runner.join();
  EXPECT_EQ(admin.requests_served(), 5u);
}

}  // namespace
}  // namespace dl::obs
