// Differential tests for the SIMD coding/hashing data plane: every dispatch
// tier must produce byte-identical output to the scalar reference for all
// scalars × lengths × alignments, and whole-pipeline results (Reed-Solomon
// encode/reconstruct, Merkle roots) must not depend on the active kernel.
#include <gtest/gtest.h>

#include <cstring>

#include "common/cpu.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "erasure/gf256.hpp"
#include "erasure/gf256_dispatch.hpp"
#include "erasure/reed_solomon.hpp"
#include "merkle/merkle_tree.hpp"

namespace dl {
namespace {

// Saves and restores the pinned kernels so tests can't leak state.
struct KernelGuard {
  gf256::Kernel gf = gf256::active_kernel();
  ShaKernel sha = sha256_active_kernel();
  ~KernelGuard() {
    gf256::set_active_kernel(gf);
    sha256_set_active_kernel(sha);
  }
};

TEST(CodingDispatch, ScalarKernelAlwaysSupported) {
  const auto kernels = gf256::supported_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), gf256::Kernel::Scalar);
  const auto sha = sha256_supported_kernels();
  ASSERT_FALSE(sha.empty());
  EXPECT_EQ(sha.front(), ShaKernel::Scalar);
}

TEST(CodingDispatch, ForceScalarPinsDefault) {
  if (!cpu::force_scalar()) GTEST_SKIP() << "DL_FORCE_SCALAR not set";
  EXPECT_EQ(gf256::active_kernel(), gf256::Kernel::Scalar);
  EXPECT_EQ(sha256_active_kernel(), ShaKernel::Scalar);
}

// Every kernel, every scalar c, a battery of lengths that cover empty,
// sub-vector, exactly-one-vector, vector+tail and multi-vector shapes, at
// several misalignments of BOTH src and dst (the kernel runs in place
// inside a pool at the offset, so unaligned loads and stores are both
// exercised): must equal the mul()-per-byte reference, and bytes around
// the target range must be untouched.
TEST(CodingDispatch, MulAddRowAllKernelsAllScalars) {
  const std::size_t lengths[] = {0, 1, 2, 3, 7, 15, 16, 17,
                                 31, 32, 33, 63, 64, 65, 100, 257};
  const Bytes src_pool = random_bytes(512 + 8, 100);
  const Bytes dst_pool = random_bytes(512 + 8, 101);
  for (const gf256::Kernel k : gf256::supported_kernels()) {
    for (int c = 0; c < 256; ++c) {
      for (const std::size_t n : lengths) {
        for (const std::size_t offset : {0u, 1u, 3u, 7u}) {
          const std::uint8_t* src = src_pool.data() + offset;
          Bytes work = dst_pool;
          std::uint8_t* dst = work.data() + offset;
          Bytes expect = dst_pool;
          for (std::size_t i = 0; i < n; ++i) {
            expect[offset + i] ^= gf256::mul(static_cast<std::uint8_t>(c), src[i]);
          }
          gf256::mul_add_row_with(k, dst, src, static_cast<std::uint8_t>(c), n);
          ASSERT_EQ(work, expect) << gf256::kernel_name(k) << " c=" << c
                                  << " n=" << n << " off=" << offset;
        }
      }
    }
  }
}

TEST(CodingDispatch, MulRowAllKernelsAllScalars) {
  const Bytes src_pool = random_bytes(512 + 8, 102);
  for (const gf256::Kernel k : gf256::supported_kernels()) {
    for (int c = 0; c < 256; ++c) {
      for (const std::size_t n : {0u, 1u, 15u, 16u, 33u, 64u, 200u, 511u}) {
        for (const std::size_t offset : {0u, 5u}) {
          const std::uint8_t* src = src_pool.data() + offset;
          // In-pool destination at the same offset: unaligned stores too.
          Bytes work(512 + 8, 0xEE);
          std::uint8_t* dst = work.data() + offset;
          gf256::mul_row_with(k, dst, src, static_cast<std::uint8_t>(c), n);
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(dst[i], gf256::mul(static_cast<std::uint8_t>(c), src[i]))
                << gf256::kernel_name(k) << " c=" << c << " n=" << n << " i=" << i;
          }
          for (std::size_t i = offset + n; i < work.size(); ++i) {
            ASSERT_EQ(work[i], 0xEE) << "overrun at " << i;
          }
        }
      }
    }
  }
}

TEST(CodingDispatch, MulRowInPlaceAllKernels) {
  for (const gf256::Kernel k : gf256::supported_kernels()) {
    Bytes buf = random_bytes(321, 103);
    Bytes expect = buf;
    for (auto& b : expect) b = gf256::mul(29, b);
    gf256::mul_row_with(k, buf.data(), buf.data(), 29, buf.size());
    EXPECT_EQ(buf, expect) << gf256::kernel_name(k);
  }
}

TEST(CodingDispatch, RandomizedLongRowsMatchScalar) {
  Rng rng(104);
  for (const gf256::Kernel k : gf256::supported_kernels()) {
    if (k == gf256::Kernel::Scalar) continue;
    for (int trial = 0; trial < 50; ++trial) {
      const std::size_t n = 1 + rng.next_below(65536);
      const auto c = static_cast<std::uint8_t>(rng.next());
      const Bytes src = random_bytes(n, 200 + static_cast<std::uint64_t>(trial));
      Bytes simd = random_bytes(n, 300 + static_cast<std::uint64_t>(trial));
      Bytes scalar = simd;
      gf256::mul_add_row_with(k, simd.data(), src.data(), c, n);
      gf256::mul_add_row_with(gf256::Kernel::Scalar, scalar.data(), src.data(), c, n);
      ASSERT_EQ(simd, scalar) << gf256::kernel_name(k) << " trial=" << trial
                              << " n=" << n << " c=" << int{c};
    }
  }
}

// Reed-Solomon encode → drop N-K chunks → reconstruct must round-trip at
// the paper's (N, f) deployments under every kernel, and the encodings
// themselves must be identical across kernels.
TEST(CodingDispatch, ReedSolomonPipelineIdenticalAcrossKernels) {
  KernelGuard guard;
  struct P {
    int n, f;
  };
  for (const P p : {P{4, 1}, P{16, 5}, P{32, 10}, P{64, 21}}) {
    const int k = p.n - 2 * p.f;
    const ReedSolomon rs(k, p.n);
    const Bytes block = random_bytes(40961, static_cast<std::uint64_t>(p.n));

    std::vector<std::vector<Bytes>> encodings;
    for (const gf256::Kernel kern : gf256::supported_kernels()) {
      gf256::set_active_kernel(kern);
      encodings.push_back(rs.encode(block));
    }
    for (std::size_t i = 1; i < encodings.size(); ++i) {
      ASSERT_EQ(encodings[i], encodings[0]) << "n=" << p.n;
    }

    // Drop a random max-size hole set, reconstruct under each kernel.
    Rng rng(static_cast<std::uint64_t>(p.n) * 7);
    std::vector<Bytes> holes = encodings[0];
    int dropped = 0;
    while (dropped < p.n - k) {
      const auto i = static_cast<std::size_t>(rng.next_below(static_cast<std::uint64_t>(p.n)));
      if (holes[i].empty()) continue;
      holes[i].clear();
      ++dropped;
    }
    for (const gf256::Kernel kern : gf256::supported_kernels()) {
      gf256::set_active_kernel(kern);
      const auto back = rs.decode(holes);
      ASSERT_TRUE(back.has_value()) << "n=" << p.n << " " << gf256::kernel_name(kern);
      ASSERT_EQ(*back, block) << "n=" << p.n << " " << gf256::kernel_name(kern);
      const auto shards = rs.reconstruct_shards(holes);
      ASSERT_TRUE(shards.has_value());
      ASSERT_EQ(*shards, encodings[0]) << "n=" << p.n << " " << gf256::kernel_name(kern);
    }
  }
}

// SHA-256: every kernel must agree with the scalar rounds on lengths that
// cover every padding shape (block boundaries ±1, the 55/56/57 pivot where
// the length field spills into a second padding block).
TEST(CodingDispatch, Sha256KernelsIdenticalAcrossLengths) {
  KernelGuard guard;
  const Bytes data = random_bytes(1 << 16, 105);
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n <= 130; ++n) lengths.push_back(n);
  for (const std::size_t n : {255u, 256u, 1000u, 4096u, 65536u}) lengths.push_back(n);

  for (const std::size_t n : lengths) {
    const ByteView view(data.data(), n);
    sha256_set_active_kernel(ShaKernel::Scalar);
    const Hash ref = sha256(view);
    const Hash ref_tagged = sha256_tagged(0x00, view);
    for (const ShaKernel k : sha256_supported_kernels()) {
      sha256_set_active_kernel(k);
      EXPECT_EQ(sha256(view), ref) << sha_kernel_name(k) << " n=" << n;
      EXPECT_EQ(sha256_tagged(0x00, view), ref_tagged)
          << sha_kernel_name(k) << " n=" << n;
    }
  }
}

// sha256_tagged must equal hashing the concatenation through the
// incremental path — it is an optimization, not a different function.
TEST(CodingDispatch, TaggedHashMatchesIncremental) {
  Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = rng.next_below(300);
    const auto tag = static_cast<std::uint8_t>(rng.next_below(2));
    const Bytes data = random_bytes(n, 400 + static_cast<std::uint64_t>(trial));
    Sha256 h;
    h.update(ByteView(&tag, 1));
    h.update(ByteView(data.data(), data.size()));
    EXPECT_EQ(sha256_tagged(tag, ByteView(data.data(), data.size())), h.finalize())
        << "n=" << n;
  }
}

TEST(CodingDispatch, MerkleRootIdenticalAcrossShaKernels) {
  KernelGuard guard;
  std::vector<Bytes> leaves;
  for (int i = 0; i < 17; ++i) {
    leaves.push_back(random_bytes(1 + static_cast<std::size_t>(i) * 37,
                                  500 + static_cast<std::uint64_t>(i)));
  }
  sha256_set_active_kernel(ShaKernel::Scalar);
  const Hash ref = merkle_root(leaves);
  const auto ref_leaves = merkle_leaf_hashes(leaves);
  for (const ShaKernel k : sha256_supported_kernels()) {
    sha256_set_active_kernel(k);
    EXPECT_EQ(merkle_root(leaves), ref) << sha_kernel_name(k);
    EXPECT_EQ(merkle_leaf_hashes(leaves), ref_leaves) << sha_kernel_name(k);
    // Proofs built under one kernel verify under another.
    MerkleTree tree(leaves);
    for (std::uint32_t i = 0; i < tree.leaf_count(); ++i) {
      EXPECT_TRUE(merkle_verify(ref, ByteView(leaves[i].data(), leaves[i].size()),
                                tree.prove(i)))
          << sha_kernel_name(k) << " leaf=" << i;
    }
  }
}

TEST(CodingDispatch, BatchedLeafHashesMatchSingle) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(random_bytes(static_cast<std::size_t>(i) * 63,
                                  600 + static_cast<std::uint64_t>(i)));
  }
  const auto batch = merkle_leaf_hashes(leaves);
  ASSERT_EQ(batch.size(), leaves.size());
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_EQ(batch[i], merkle_leaf_hash(ByteView(leaves[i].data(), leaves[i].size())))
        << i;
  }
}

}  // namespace
}  // namespace dl
