// Property tests of GF(2^8) arithmetic: field axioms over exhaustive and
// randomly sampled element sets.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "erasure/gf256.hpp"

namespace dl {
namespace {

TEST(Gf256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, 1), x);
    EXPECT_EQ(gf256::mul(1, x), x);
    EXPECT_EQ(gf256::mul(x, 0), 0);
    EXPECT_EQ(gf256::mul(0, x), 0);
  }
}

TEST(Gf256, MulCommutative) {
  for (int a = 0; a < 256; ++a) {
    for (int b = a; b < 256; ++b) {
      EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                gf256::mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, MulAssociativeSampled) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c), gf256::mul(a, gf256::mul(b, c)));
  }
}

TEST(Gf256, DistributiveSampled) {
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gf256::mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf256::mul(a, b) ^ gf256::mul(a, c));
  }
}

TEST(Gf256, InverseExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf256::mul(x, gf256::inv(x)), 1) << a;
  }
}

TEST(Gf256, DivisionByZeroIsDefinedZero) {
  // Zero has no inverse; the documented contract is that div(a, 0) and
  // inv(0) return 0 instead of reading garbage off the log table.
  EXPECT_EQ(gf256::inv(0), 0);
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::div(static_cast<std::uint8_t>(a), 0), 0) << a;
  }
}

TEST(Gf256, DivisionIsMulByInverse) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const auto x = static_cast<std::uint8_t>(a);
      const auto y = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf256::div(x, y), gf256::mul(x, gf256::inv(y)));
    }
  }
}

TEST(Gf256, ExpGeneratorCyclic) {
  // exp is 255-periodic and hits every nonzero element exactly once.
  std::vector<bool> seen(256, false);
  for (int e = 0; e < 255; ++e) {
    const std::uint8_t v = gf256::exp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[v]) << "repeat at e=" << e;
    seen[v] = true;
  }
  EXPECT_EQ(gf256::exp(255), gf256::exp(0));
  EXPECT_EQ(gf256::exp(-1), gf256::exp(254));
  EXPECT_EQ(gf256::exp(510), gf256::exp(0));
}

TEST(Gf256, MulAddRowMatchesScalar) {
  Rng rng(3);
  Bytes src = random_bytes(1000, 4);
  for (int c : {0, 1, 2, 37, 255}) {
    Bytes dst = random_bytes(1000, 5);
    Bytes expect = dst;
    for (std::size_t i = 0; i < src.size(); ++i) {
      expect[i] ^= gf256::mul(static_cast<std::uint8_t>(c), src[i]);
    }
    gf256::mul_add_row(dst.data(), src.data(), static_cast<std::uint8_t>(c), src.size());
    EXPECT_EQ(dst, expect) << "c=" << c;
  }
}

TEST(Gf256, MulRowMatchesScalar) {
  Bytes src = random_bytes(512, 6);
  for (int c : {0, 1, 91, 254}) {
    Bytes dst(512, 0);
    gf256::mul_row(dst.data(), src.data(), static_cast<std::uint8_t>(c), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(dst[i], gf256::mul(static_cast<std::uint8_t>(c), src[i]));
    }
  }
}

TEST(Gf256, MulRowInPlace) {
  Bytes buf = random_bytes(64, 8);
  Bytes expect = buf;
  for (auto& b : expect) b = gf256::mul(7, b);
  gf256::mul_row(buf.data(), buf.data(), 7, buf.size());
  EXPECT_EQ(buf, expect);
}

}  // namespace
}  // namespace dl
