// AVID-FP baseline: dispersal-time verification via fingerprinted
// cross-checksums, Bracha-pattern completion, retrieval, and the message
// overhead formula that bench/fig02 relies on.
#include <gtest/gtest.h>

#include "automaton_harness.hpp"
#include "common/rng.hpp"
#include "vid/avid_fp.hpp"

namespace dl::vid {
namespace {

using test::Router;

struct FpCluster {
  Params p;
  std::vector<AvidFpServer> servers;
  std::vector<AvidFpRetriever> retrievers;
  Router router;

  FpCluster(int n, int f, std::uint64_t seed) : p{n, f}, router(n, seed) {
    for (int i = 0; i < n; ++i) {
      servers.emplace_back(p, i);
      retrievers.emplace_back(p, i);
    }
    router.set_handler([this](int from, int to, const Envelope& env) {
      Outbox out;
      if (env.kind == MsgKind::FpReturnChunk) {
        FpChunkMsg m;
        if (FpChunkMsg::decode(env.body, m)) {
          retrievers[static_cast<std::size_t>(to)].handle_return_chunk(from, m);
        }
        return;
      }
      servers[static_cast<std::size_t>(to)].handle(from, env.kind, env.body, out);
      router.push(to, out);
    });
  }

  void disperse(int who, ByteView block) {
    auto chunks = avid_fp_disperse(p, block);
    Outbox out;
    for (int i = 0; i < p.n; ++i) {
      OutMsg m;
      m.to = i;
      m.env.kind = MsgKind::FpChunk;
      m.env.body = chunks[static_cast<std::size_t>(i)].encode();
      out.push_back(std::move(m));
    }
    router.push(who, out);
  }

  void retrieve(int who) {
    Outbox out;
    retrievers[static_cast<std::size_t>(who)].begin(out);
    router.push(who, out);
  }

  int complete_count() const {
    int c = 0;
    for (const auto& s : servers) c += s.complete() ? 1 : 0;
    return c;
  }
};

struct FpParam {
  int n;
  int f;
  std::uint64_t seed;
};

class AvidFpP : public ::testing::TestWithParam<FpParam> {};

TEST_P(AvidFpP, DispersalCompletes) {
  const auto [n, f, seed] = GetParam();
  FpCluster c(n, f, seed);
  c.disperse(0, random_bytes(4000, seed));
  c.router.run();
  EXPECT_EQ(c.complete_count(), n);
}

TEST_P(AvidFpP, RetrievalReturnsBlock) {
  const auto [n, f, seed] = GetParam();
  FpCluster c(n, f, seed);
  const Bytes block = random_bytes(2222, seed + 1);
  c.disperse(0, block);
  c.router.run();
  for (int i = 0; i < n; ++i) c.retrieve(i);
  c.router.run();
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(c.retrievers[static_cast<std::size_t>(i)].done()) << i;
    EXPECT_EQ(c.retrievers[static_cast<std::size_t>(i)].result(), block);
  }
}

TEST_P(AvidFpP, ToleratesCrashFaults) {
  const auto [n, f, seed] = GetParam();
  FpCluster c(n, f, seed);
  for (int i = 0; i < f; ++i) c.router.mute(n - 1 - i);
  const Bytes block = random_bytes(1000, seed + 2);
  c.disperse(0, block);
  c.router.run();
  for (int i = 0; i < n - f; ++i) {
    EXPECT_TRUE(c.servers[static_cast<std::size_t>(i)].complete()) << i;
  }
  c.retrieve(0);
  c.router.run();
  ASSERT_TRUE(c.retrievers[0].done());
  EXPECT_EQ(c.retrievers[0].result(), block);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AvidFpP,
                         ::testing::Values(FpParam{4, 1, 1}, FpParam{7, 2, 2},
                                           FpParam{10, 3, 3}, FpParam{16, 5, 4}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "f" +
                                  std::to_string(info.param.f) + "s" +
                                  std::to_string(info.param.seed);
                         });

TEST(AvidFp, ServerRejectsInconsistentChunk) {
  // Unlike AVID-M, AVID-FP catches inconsistent encoding AT DISPERSAL: a
  // chunk that does not satisfy the fingerprint homomorphism is dropped.
  const Params p{7, 2};
  auto msgs = avid_fp_disperse(p, random_bytes(600, 7));
  // Tamper a parity chunk but keep ITS hash slot consistent so only the
  // fingerprint check can catch it.
  msgs[5].chunk[0] ^= 0xFF;
  msgs[5].checksum.chunk_hashes[5] = sha256(msgs[5].chunk);
  AvidFpServer server(p, 5);
  Outbox out;
  server.handle(0, MsgKind::FpChunk, msgs[5].encode(), out);
  EXPECT_FALSE(server.has_chunk());
  EXPECT_TRUE(out.empty());
}

TEST(AvidFp, ServerRejectsWrongHash) {
  const Params p{7, 2};
  auto msgs = avid_fp_disperse(p, random_bytes(600, 8));
  msgs[3].chunk[0] ^= 0x01;  // hash mismatch
  AvidFpServer server(p, 3);
  Outbox out;
  server.handle(0, MsgKind::FpChunk, msgs[3].encode(), out);
  EXPECT_FALSE(server.has_chunk());
}

TEST(AvidFp, MessageOverheadIsLinearInN) {
  // The Echo/Ready bodies carry the cross-checksum: N*32 + (N-2f)*8 + 8
  // bytes — this is what makes Fig. 2's AVID-FP curve blow up with N.
  for (int n : {4, 16, 64}) {
    const int f = (n - 1) / 3;
    const Params p{n, f};
    auto msgs = avid_fp_disperse(p, random_bytes(256, 9));
    const std::size_t cc = msgs[0].checksum.wire_size();
    EXPECT_EQ(cc, static_cast<std::size_t>(n) * 32 +
                      static_cast<std::size_t>(n - 2 * f) * 8 + 8);
  }
}

TEST(AvidFp, DispersalDeterministic) {
  const Params p{4, 1};
  const Bytes block = random_bytes(100, 10);
  const auto a = avid_fp_disperse(p, block);
  const auto b = avid_fp_disperse(p, block);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].chunk, b[i].chunk);
    EXPECT_EQ(a[i].checksum, b[i].checksum);
  }
}

TEST(AvidFp, RequestBeforeCompleteDeferred) {
  const Params p{4, 1};
  FpCluster c(p.n, p.f, 12);
  c.retrieve(2);
  c.router.run();
  EXPECT_FALSE(c.retrievers[2].done());
  const Bytes block = random_bytes(333, 11);
  c.disperse(0, block);
  c.router.run();
  ASSERT_TRUE(c.retrievers[2].done());
  EXPECT_EQ(c.retrievers[2].result(), block);
}

}  // namespace
}  // namespace dl::vid
