// SHA-256 against FIPS 180-4 / NIST CAVP vectors, plus incremental-update
// equivalence and Hash utility behaviour.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace dl {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256(bytes_of("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(sha256(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  const Bytes m(1000000, 'a');
  EXPECT_EQ(sha256(m).hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = random_bytes(10000, 7);
  // Split at awkward boundaries relative to the 64-byte block size.
  for (std::size_t cut : {1u, 55u, 63u, 64u, 65u, 128u, 1000u, 9999u}) {
    Sha256 h;
    h.update(ByteView(data.data(), cut));
    h.update(ByteView(data.data() + cut, data.size() - cut));
    EXPECT_EQ(h.finalize(), sha256(data)) << "cut=" << cut;
  }
}

TEST(Sha256, ManySmallUpdates) {
  const Bytes data = random_bytes(777, 9);
  Sha256 h;
  for (std::uint8_t b : data) h.update(ByteView(&b, 1));
  EXPECT_EQ(h.finalize(), sha256(data));
}

TEST(Sha256, LengthSensitivity) {
  // Messages around block-size boundaries hash distinctly.
  for (std::size_t n : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const Bytes a(n, 0x61);
    const Bytes b(n + 1, 0x61);
    EXPECT_NE(sha256(a), sha256(b)) << n;
  }
}

TEST(Sha256, PairHash) {
  const Hash a = sha256(bytes_of("a"));
  const Hash b = sha256(bytes_of("b"));
  Bytes cat;
  append(cat, a.view());
  append(cat, b.view());
  EXPECT_EQ(sha256_pair(a, b), sha256(cat));
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

TEST(Hash, ComparisonAndZero) {
  Hash z;
  EXPECT_TRUE(z.is_zero());
  const Hash a = sha256(bytes_of("x"));
  EXPECT_FALSE(a.is_zero());
  EXPECT_EQ(a, sha256(bytes_of("x")));
  EXPECT_NE(a, sha256(bytes_of("y")));
  EXPECT_EQ(a.hex().size(), 64u);
}

TEST(Hash, HasherUsableInMaps) {
  HashHasher hh;
  const Hash a = sha256(bytes_of("x"));
  const Hash b = sha256(bytes_of("y"));
  EXPECT_NE(hh(a), hh(b));  // overwhelmingly likely
  EXPECT_EQ(hh(a), hh(a));
}

}  // namespace
}  // namespace dl
