// LedgerStore durability semantics: record/segment round-trips, index
// rebuild on reopen, torn-tail and bit-flip truncation (open() must recover
// a valid shorter prefix from ANY garbage, never crash or fail), multi-
// segment rolling, the uncommitted-tail rule (blocks past the last
// EpochDone marker do not count), and the fsync policy plumbing.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/crc32c.hpp"
#include "storage/ledger_store.hpp"

namespace dl::storage {
namespace {

// A self-cleaning temp directory per test.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/dl_store_test.XXXXXX";
    path = mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

BlockRecord make_block(std::uint64_t at, std::uint64_t epoch,
                       std::uint32_t proposer, std::size_t bytes,
                       std::uint64_t seed) {
  BlockRecord r;
  r.at_epoch = at;
  r.block_epoch = epoch;
  r.proposer = proposer;
  r.content = random_bytes(bytes, seed);
  return r;
}

std::unique_ptr<LedgerStore> open_ok(const std::string& dir,
                                     StoreOptions opt = {}) {
  std::string err;
  auto store = LedgerStore::open(dir, opt, &err);
  EXPECT_NE(store, nullptr) << err;
  return store;
}

// Appends `epochs` epochs of `blocks_per_epoch` blocks each and closes
// every epoch with its EpochDone marker.
void fill(LedgerStore& s, std::uint64_t epochs, int blocks_per_epoch,
          std::size_t bytes = 200) {
  const std::uint64_t base = s.delivered_frontier();
  for (std::uint64_t e = base; e < base + epochs; ++e) {
    for (int p = 0; p < blocks_per_epoch; ++p) {
      s.append_block(make_block(e, e, static_cast<std::uint32_t>(p), bytes,
                                e * 100 + static_cast<std::uint64_t>(p)));
    }
    s.append_epoch_done(e);
  }
  s.drain();
}

TEST(Crc32c, KnownVectorsAndChaining) {
  // RFC 3720 test vector: 32 zero bytes.
  const Bytes zeros(32, 0);
  EXPECT_EQ(crc32c(ByteView(zeros)), 0x8a9136aau);
  const Bytes digits = bytes_of("123456789");
  EXPECT_EQ(crc32c(ByteView(digits)), 0xe3069283u);
  // Chaining a split input equals one pass over the whole.
  const Bytes all = bytes_of("hello, crc world");
  const auto whole = crc32c(ByteView(all));
  const auto head = crc32c(ByteView(all.data(), 7));
  EXPECT_EQ(crc32c(ByteView(all.data() + 7, all.size() - 7), head), whole);
}

TEST(FsyncPolicyFlag, ParseAndPrint) {
  EXPECT_EQ(parse_fsync_policy("never"), FsyncPolicy::kNever);
  EXPECT_EQ(parse_fsync_policy("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(parse_fsync_policy("always"), FsyncPolicy::kAlways);
  EXPECT_FALSE(parse_fsync_policy("").has_value());
  EXPECT_FALSE(parse_fsync_policy("Batch").has_value());
  EXPECT_FALSE(parse_fsync_policy("fsync").has_value());
  EXPECT_STREQ(to_string(FsyncPolicy::kNever), "never");
  EXPECT_STREQ(to_string(FsyncPolicy::kBatch), "batch");
  EXPECT_STREQ(to_string(FsyncPolicy::kAlways), "always");
}

TEST(LedgerStore, RoundTripAndReopen) {
  TempDir dir;
  {
    auto s = open_ok(dir.path);
    EXPECT_EQ(s->delivered_frontier(), 0u);
    fill(*s, 5, 3);
    EXPECT_EQ(s->delivered_frontier(), 5u);
    EXPECT_EQ(s->committed_blocks(), 15u);

    std::vector<BlockRecord> got;
    ASSERT_TRUE(s->blocks_at(2, got));
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[1].block_epoch, 2u);
    EXPECT_EQ(got[1].proposer, 1u);
    EXPECT_EQ(got[1].content, random_bytes(200, 201));
    // Past the frontier: refused, not empty-succeeded.
    EXPECT_FALSE(s->blocks_at(5, got));
  }
  // Reopen: index rebuilt purely from the segment bytes.
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->recovered().delivered_epochs, 5u);
  EXPECT_EQ(s->recovered().committed_blocks, 15u);
  EXPECT_EQ(s->recovered().truncated_bytes, 0u);
  std::uint64_t n = 0, last_at = 0;
  s->for_each_committed([&](const BlockRecord& r) {
    EXPECT_GE(r.at_epoch, last_at);  // delivery order
    last_at = r.at_epoch;
    EXPECT_EQ(r.content, random_bytes(200, r.at_epoch * 100 + r.proposer));
    ++n;
    return true;
  });
  EXPECT_EQ(n, 15u);
}

TEST(LedgerStore, UncommittedTailIgnoredOnReopen) {
  TempDir dir;
  {
    auto s = open_ok(dir.path);
    fill(*s, 3, 2);
    // Epoch 3 delivered two blocks but never closed — the crash happened
    // before its EpochDone record.
    s->append_block(make_block(3, 3, 0, 100, 1));
    s->append_block(make_block(3, 3, 1, 100, 2));
    s->drain();
  }
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->recovered().delivered_epochs, 3u);
  EXPECT_EQ(s->recovered().committed_blocks, 6u);
  EXPECT_EQ(s->recovered().tail_records, 2u);
  // The tail is not readable as committed data...
  std::vector<BlockRecord> got;
  EXPECT_FALSE(s->blocks_at(3, got));
  // ...and re-appending the same epoch after recovery commits it once.
  s->append_block(make_block(3, 3, 0, 100, 1));
  s->append_block(make_block(3, 3, 1, 100, 2));
  s->append_epoch_done(3);
  s->drain();
  ASSERT_TRUE(s->blocks_at(3, got));
  EXPECT_EQ(got.size(), 2u);
}

TEST(LedgerStore, TornWriteTruncatedOnReopen) {
  TempDir dir;
  std::string seg;
  {
    auto s = open_ok(dir.path);
    fill(*s, 4, 2);
    seg = dir.path + "/ledger-0000000000.seg";
  }
  // Simulate a torn write: half a record header of garbage at the tail.
  {
    std::FILE* f = std::fopen(seg.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const unsigned char junk[5] = {0x13, 0x37, 0xde, 0xad, 0xbe};
    std::fwrite(junk, 1, sizeof junk, f);
    std::fclose(f);
  }
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->recovered().truncated_bytes, 5u);
  EXPECT_EQ(s->recovered().delivered_epochs, 4u);
  EXPECT_EQ(s->recovered().committed_blocks, 8u);
  // The file itself was healed, so the next reopen is clean.
  auto s2 = (s.reset(), open_ok(dir.path));
  EXPECT_EQ(s2->recovered().truncated_bytes, 0u);
}

TEST(LedgerStore, BitFlipCutsFromDamagePoint) {
  TempDir dir;
  std::string seg;
  {
    auto s = open_ok(dir.path);
    fill(*s, 6, 2, 300);
    seg = dir.path + "/ledger-0000000000.seg";
  }
  const auto size = std::filesystem::file_size(seg);
  // Flip one bit roughly 2/3 into the file: every record from the damaged
  // one onward must be dropped, everything before it must survive.
  {
    std::FILE* f = std::fopen(seg.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size * 2 / 3), SEEK_SET);
    const int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  auto s = open_ok(dir.path);
  EXPECT_GT(s->recovered().truncated_bytes, 0u);
  EXPECT_LT(s->recovered().delivered_epochs, 6u);
  // Whatever survived is internally consistent and re-readable.
  std::uint64_t blocks = 0;
  s->for_each_committed([&](const BlockRecord& r) {
    EXPECT_EQ(r.content.size(), 300u);
    ++blocks;
    return true;
  });
  EXPECT_EQ(blocks, s->committed_blocks());
  EXPECT_EQ(blocks, s->recovered().delivered_epochs * 2);
}

TEST(LedgerStore, GarbageSegmentRecoversEmpty) {
  TempDir dir;
  {
    std::FILE* f =
        std::fopen((dir.path + "/ledger-0000000000.seg").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const Bytes junk = random_bytes(4096, 99);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->delivered_frontier(), 0u);
  EXPECT_EQ(s->committed_blocks(), 0u);
  EXPECT_GT(s->recovered().truncated_bytes, 0u);
  // Still writable after healing.
  fill(*s, 2, 1);
  EXPECT_EQ(s->delivered_frontier(), 2u);
}

TEST(LedgerStore, MultiSegmentRollAndRebuild) {
  TempDir dir;
  StoreOptions opt;
  opt.segment_bytes = 2048;  // force frequent rolls
  {
    auto s = open_ok(dir.path, opt);
    fill(*s, 20, 2, 400);
    EXPECT_GT(s->segment_count(), 3u);
  }
  auto s = open_ok(dir.path, opt);
  EXPECT_EQ(s->recovered().delivered_epochs, 20u);
  EXPECT_EQ(s->recovered().committed_blocks, 40u);
  std::vector<BlockRecord> got;
  ASSERT_TRUE(s->blocks_at(19, got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].content, random_bytes(400, 1900));
}

TEST(LedgerStore, CorruptMiddleSegmentDropsLaterOnes) {
  TempDir dir;
  StoreOptions opt;
  opt.segment_bytes = 2048;
  std::size_t segs = 0;
  {
    auto s = open_ok(dir.path, opt);
    fill(*s, 20, 2, 400);
    segs = s->segment_count();
    ASSERT_GT(segs, 2u);
  }
  // Wipe segment 1 with garbage: recovery keeps segment 0's prefix and must
  // drop every later segment (the record sequence is broken).
  {
    char name[64];
    std::snprintf(name, sizeof name, "/ledger-%010d.seg", 1);
    std::FILE* f = std::fopen((dir.path + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const Bytes junk = random_bytes(1024, 7);
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  auto s = open_ok(dir.path, opt);
  EXPECT_EQ(s->recovered().dropped_segments, segs - 2);
  EXPECT_LT(s->recovered().delivered_epochs, 20u);
  // The store resumes appending after the healed prefix.
  const auto before = s->delivered_frontier();
  fill(*s, 1, 1);
  EXPECT_EQ(s->delivered_frontier(), before + 1);
}

TEST(LedgerStore, ActivityFrontierPersistsMonotonically) {
  TempDir dir;
  {
    auto s = open_ok(dir.path);
    s->append_activity_frontier(3);
    s->append_activity_frontier(7);
    s->append_activity_frontier(5);  // regression ignored
    s->drain();
    EXPECT_EQ(s->activity_frontier(), 7u);
  }
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->recovered().activity_frontier, 7u);
  EXPECT_EQ(s->activity_frontier(), 7u);
}

TEST(LedgerStore, FsyncPolicyPlumbing) {
  TempDir never_dir, always_dir;
  StoreOptions opt;
  opt.fsync = FsyncPolicy::kNever;
  {
    auto s = open_ok(never_dir.path, opt);
    fill(*s, 3, 1);
    s->sync();  // still no fsync under kNever — writes only
    EXPECT_EQ(s->stats().fsyncs, 0u);
    EXPECT_GT(s->stats().drains, 0u);
  }
  opt.fsync = FsyncPolicy::kAlways;
  {
    auto s = open_ok(always_dir.path, opt);
    fill(*s, 3, 1);
    EXPECT_GT(s->stats().fsyncs, 0u);
  }
  // Both survive a reopen identically: the policy is about power loss, not
  // about what a clean process sees.
  EXPECT_EQ(open_ok(never_dir.path)->recovered().delivered_epochs, 3u);
  EXPECT_EQ(open_ok(always_dir.path)->recovered().delivered_epochs, 3u);
}

TEST(LedgerStore, DuplicateTailRecordsDedupedByKey) {
  TempDir dir;
  {
    auto s = open_ok(dir.path);
    // Pre-crash: epoch 0's block was appended, but EpochDone was lost.
    s->append_block(make_block(0, 0, 0, 64, 42));
    s->drain();
  }
  {
    auto s = open_ok(dir.path);
    EXPECT_EQ(s->recovered().tail_records, 1u);
    // Post-restart the node re-delivers epoch 0 and re-appends the block;
    // the store must commit ONE copy, not two.
    s->append_block(make_block(0, 0, 0, 64, 42));
    s->append_epoch_done(0);
    s->drain();
    std::vector<BlockRecord> got;
    ASSERT_TRUE(s->blocks_at(0, got));
    EXPECT_EQ(got.size(), 1u);
  }
  auto s = open_ok(dir.path);
  EXPECT_EQ(s->recovered().committed_blocks, 1u);
}

TEST(LedgerStore, OpenFailsOnUncreatableDir) {
  std::string err;
  auto s = LedgerStore::open("/proc/definitely/not/creatable", {}, &err);
  EXPECT_EQ(s, nullptr);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace dl::storage
