file(REMOVE_RECURSE
  "CMakeFiles/fig10_latency_load.dir/bench/fig10_latency_load.cpp.o"
  "CMakeFiles/fig10_latency_load.dir/bench/fig10_latency_load.cpp.o.d"
  "fig10_latency_load"
  "fig10_latency_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_latency_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
