file(REMOVE_RECURSE
  "CMakeFiles/fig08_geo_throughput.dir/bench/fig08_geo_throughput.cpp.o"
  "CMakeFiles/fig08_geo_throughput.dir/bench/fig08_geo_throughput.cpp.o.d"
  "fig08_geo_throughput"
  "fig08_geo_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_geo_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
