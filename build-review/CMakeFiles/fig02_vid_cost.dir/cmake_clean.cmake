file(REMOVE_RECURSE
  "CMakeFiles/fig02_vid_cost.dir/bench/fig02_vid_cost.cpp.o"
  "CMakeFiles/fig02_vid_cost.dir/bench/fig02_vid_cost.cpp.o.d"
  "fig02_vid_cost"
  "fig02_vid_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_vid_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
