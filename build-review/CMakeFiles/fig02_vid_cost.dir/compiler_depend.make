# Empty compiler generated dependencies file for fig02_vid_cost.
# This may be replaced when dependencies are built.
