file(REMOVE_RECURSE
  "CMakeFiles/fig14_latency_metric.dir/bench/fig14_latency_metric.cpp.o"
  "CMakeFiles/fig14_latency_metric.dir/bench/fig14_latency_metric.cpp.o.d"
  "fig14_latency_metric"
  "fig14_latency_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_latency_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
