file(REMOVE_RECURSE
  "CMakeFiles/scen_hetero_cluster.dir/bench/scen_hetero_cluster.cpp.o"
  "CMakeFiles/scen_hetero_cluster.dir/bench/scen_hetero_cluster.cpp.o.d"
  "scen_hetero_cluster"
  "scen_hetero_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scen_hetero_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
