# Empty dependencies file for scen_hetero_cluster.
# This may be replaced when dependencies are built.
