file(REMOVE_RECURSE
  "CMakeFiles/avid_m_test.dir/tests/avid_m_test.cpp.o"
  "CMakeFiles/avid_m_test.dir/tests/avid_m_test.cpp.o.d"
  "avid_m_test"
  "avid_m_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avid_m_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
