# Empty dependencies file for avid_m_test.
# This may be replaced when dependencies are built.
