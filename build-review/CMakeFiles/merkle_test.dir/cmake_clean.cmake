file(REMOVE_RECURSE
  "CMakeFiles/merkle_test.dir/tests/merkle_test.cpp.o"
  "CMakeFiles/merkle_test.dir/tests/merkle_test.cpp.o.d"
  "merkle_test"
  "merkle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merkle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
