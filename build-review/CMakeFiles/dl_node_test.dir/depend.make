# Empty dependencies file for dl_node_test.
# This may be replaced when dependencies are built.
