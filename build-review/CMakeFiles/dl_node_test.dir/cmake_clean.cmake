file(REMOVE_RECURSE
  "CMakeFiles/dl_node_test.dir/tests/dl_node_test.cpp.o"
  "CMakeFiles/dl_node_test.dir/tests/dl_node_test.cpp.o.d"
  "dl_node_test"
  "dl_node_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_node_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
