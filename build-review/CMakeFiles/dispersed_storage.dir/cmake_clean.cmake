file(REMOVE_RECURSE
  "CMakeFiles/dispersed_storage.dir/examples/dispersed_storage.cpp.o"
  "CMakeFiles/dispersed_storage.dir/examples/dispersed_storage.cpp.o.d"
  "dispersed_storage"
  "dispersed_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispersed_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
