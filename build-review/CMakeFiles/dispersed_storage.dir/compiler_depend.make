# Empty compiler generated dependencies file for dispersed_storage.
# This may be replaced when dependencies are built.
