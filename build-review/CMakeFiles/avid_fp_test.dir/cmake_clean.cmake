file(REMOVE_RECURSE
  "CMakeFiles/avid_fp_test.dir/tests/avid_fp_test.cpp.o"
  "CMakeFiles/avid_fp_test.dir/tests/avid_fp_test.cpp.o.d"
  "avid_fp_test"
  "avid_fp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/avid_fp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
