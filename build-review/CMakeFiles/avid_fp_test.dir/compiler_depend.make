# Empty compiler generated dependencies file for avid_fp_test.
# This may be replaced when dependencies are built.
