# Empty compiler generated dependencies file for dlsim.
# This may be replaced when dependencies are built.
