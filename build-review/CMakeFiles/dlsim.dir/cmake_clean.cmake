file(REMOVE_RECURSE
  "CMakeFiles/dlsim.dir/examples/dlsim.cpp.o"
  "CMakeFiles/dlsim.dir/examples/dlsim.cpp.o.d"
  "dlsim"
  "dlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
