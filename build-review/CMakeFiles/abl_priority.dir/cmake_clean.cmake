file(REMOVE_RECURSE
  "CMakeFiles/abl_priority.dir/bench/abl_priority.cpp.o"
  "CMakeFiles/abl_priority.dir/bench/abl_priority.cpp.o.d"
  "abl_priority"
  "abl_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
