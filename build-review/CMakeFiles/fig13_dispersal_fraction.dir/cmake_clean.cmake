file(REMOVE_RECURSE
  "CMakeFiles/fig13_dispersal_fraction.dir/bench/fig13_dispersal_fraction.cpp.o"
  "CMakeFiles/fig13_dispersal_fraction.dir/bench/fig13_dispersal_fraction.cpp.o.d"
  "fig13_dispersal_fraction"
  "fig13_dispersal_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_dispersal_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
