# Empty dependencies file for fig13_dispersal_fraction.
# This may be replaced when dependencies are built.
