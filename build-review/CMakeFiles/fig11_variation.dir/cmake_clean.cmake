file(REMOVE_RECURSE
  "CMakeFiles/fig11_variation.dir/bench/fig11_variation.cpp.o"
  "CMakeFiles/fig11_variation.dir/bench/fig11_variation.cpp.o.d"
  "fig11_variation"
  "fig11_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
