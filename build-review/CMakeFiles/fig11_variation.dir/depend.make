# Empty dependencies file for fig11_variation.
# This may be replaced when dependencies are built.
