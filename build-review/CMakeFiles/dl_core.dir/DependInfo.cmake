
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/adversary.cpp" "CMakeFiles/dl_core.dir/src/adversary/adversary.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/adversary/adversary.cpp.o.d"
  "/root/repo/src/app/kv_state_machine.cpp" "CMakeFiles/dl_core.dir/src/app/kv_state_machine.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/app/kv_state_machine.cpp.o.d"
  "/root/repo/src/ba/binary_agreement.cpp" "CMakeFiles/dl_core.dir/src/ba/binary_agreement.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/ba/binary_agreement.cpp.o.d"
  "/root/repo/src/ba/common_coin.cpp" "CMakeFiles/dl_core.dir/src/ba/common_coin.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/ba/common_coin.cpp.o.d"
  "/root/repo/src/common/bytes.cpp" "CMakeFiles/dl_core.dir/src/common/bytes.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/common/bytes.cpp.o.d"
  "/root/repo/src/common/hex.cpp" "CMakeFiles/dl_core.dir/src/common/hex.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/common/hex.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "CMakeFiles/dl_core.dir/src/common/rng.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/common/rng.cpp.o.d"
  "/root/repo/src/common/serial.cpp" "CMakeFiles/dl_core.dir/src/common/serial.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/common/serial.cpp.o.d"
  "/root/repo/src/crypto/fingerprint.cpp" "CMakeFiles/dl_core.dir/src/crypto/fingerprint.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/crypto/fingerprint.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "CMakeFiles/dl_core.dir/src/crypto/sha256.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/crypto/sha256.cpp.o.d"
  "/root/repo/src/dl/block.cpp" "CMakeFiles/dl_core.dir/src/dl/block.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/dl/block.cpp.o.d"
  "/root/repo/src/dl/epoch.cpp" "CMakeFiles/dl_core.dir/src/dl/epoch.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/dl/epoch.cpp.o.d"
  "/root/repo/src/dl/node.cpp" "CMakeFiles/dl_core.dir/src/dl/node.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/dl/node.cpp.o.d"
  "/root/repo/src/dl/retrieval.cpp" "CMakeFiles/dl_core.dir/src/dl/retrieval.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/dl/retrieval.cpp.o.d"
  "/root/repo/src/erasure/gf256.cpp" "CMakeFiles/dl_core.dir/src/erasure/gf256.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/erasure/gf256.cpp.o.d"
  "/root/repo/src/erasure/reed_solomon.cpp" "CMakeFiles/dl_core.dir/src/erasure/reed_solomon.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/erasure/reed_solomon.cpp.o.d"
  "/root/repo/src/hb/hb_node.cpp" "CMakeFiles/dl_core.dir/src/hb/hb_node.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/hb/hb_node.cpp.o.d"
  "/root/repo/src/merkle/merkle_tree.cpp" "CMakeFiles/dl_core.dir/src/merkle/merkle_tree.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/merkle/merkle_tree.cpp.o.d"
  "/root/repo/src/metrics/metrics.cpp" "CMakeFiles/dl_core.dir/src/metrics/metrics.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/metrics/metrics.cpp.o.d"
  "/root/repo/src/runner/experiment.cpp" "CMakeFiles/dl_core.dir/src/runner/experiment.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/runner/experiment.cpp.o.d"
  "/root/repo/src/runner/report.cpp" "CMakeFiles/dl_core.dir/src/runner/report.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/runner/report.cpp.o.d"
  "/root/repo/src/runner/scenario.cpp" "CMakeFiles/dl_core.dir/src/runner/scenario.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/runner/scenario.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "CMakeFiles/dl_core.dir/src/sim/event_queue.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "CMakeFiles/dl_core.dir/src/sim/link.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/sim/link.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "CMakeFiles/dl_core.dir/src/sim/network.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/sim/network.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/dl_core.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "CMakeFiles/dl_core.dir/src/sim/trace.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/sim/trace.cpp.o.d"
  "/root/repo/src/vid/avid_fp.cpp" "CMakeFiles/dl_core.dir/src/vid/avid_fp.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/vid/avid_fp.cpp.o.d"
  "/root/repo/src/vid/avid_m.cpp" "CMakeFiles/dl_core.dir/src/vid/avid_m.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/vid/avid_m.cpp.o.d"
  "/root/repo/src/vid/messages.cpp" "CMakeFiles/dl_core.dir/src/vid/messages.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/vid/messages.cpp.o.d"
  "/root/repo/src/workload/gauss_markov.cpp" "CMakeFiles/dl_core.dir/src/workload/gauss_markov.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/workload/gauss_markov.cpp.o.d"
  "/root/repo/src/workload/topology.cpp" "CMakeFiles/dl_core.dir/src/workload/topology.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/workload/topology.cpp.o.d"
  "/root/repo/src/workload/txgen.cpp" "CMakeFiles/dl_core.dir/src/workload/txgen.cpp.o" "gcc" "CMakeFiles/dl_core.dir/src/workload/txgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
