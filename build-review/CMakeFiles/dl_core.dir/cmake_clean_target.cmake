file(REMOVE_RECURSE
  "libdl_core.a"
)
