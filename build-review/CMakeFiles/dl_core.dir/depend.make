# Empty dependencies file for dl_core.
# This may be replaced when dependencies are built.
