file(REMOVE_RECURSE
  "CMakeFiles/fig15_vultr.dir/bench/fig15_vultr.cpp.o"
  "CMakeFiles/fig15_vultr.dir/bench/fig15_vultr.cpp.o.d"
  "fig15_vultr"
  "fig15_vultr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_vultr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
