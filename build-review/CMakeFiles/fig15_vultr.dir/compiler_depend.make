# Empty compiler generated dependencies file for fig15_vultr.
# This may be replaced when dependencies are built.
