file(REMOVE_RECURSE
  "CMakeFiles/kv_test.dir/tests/kv_test.cpp.o"
  "CMakeFiles/kv_test.dir/tests/kv_test.cpp.o.d"
  "kv_test"
  "kv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
