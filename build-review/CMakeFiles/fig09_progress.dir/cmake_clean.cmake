file(REMOVE_RECURSE
  "CMakeFiles/fig09_progress.dir/bench/fig09_progress.cpp.o"
  "CMakeFiles/fig09_progress.dir/bench/fig09_progress.cpp.o.d"
  "fig09_progress"
  "fig09_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
