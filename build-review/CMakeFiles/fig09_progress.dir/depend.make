# Empty dependencies file for fig09_progress.
# This may be replaced when dependencies are built.
