file(REMOVE_RECURSE
  "CMakeFiles/envelope_test.dir/tests/envelope_test.cpp.o"
  "CMakeFiles/envelope_test.dir/tests/envelope_test.cpp.o.d"
  "envelope_test"
  "envelope_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/envelope_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
