file(REMOVE_RECURSE
  "CMakeFiles/priority_test.dir/tests/priority_test.cpp.o"
  "CMakeFiles/priority_test.dir/tests/priority_test.cpp.o.d"
  "priority_test"
  "priority_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
