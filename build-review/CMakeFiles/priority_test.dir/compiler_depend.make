# Empty compiler generated dependencies file for priority_test.
# This may be replaced when dependencies are built.
