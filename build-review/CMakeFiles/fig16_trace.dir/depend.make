# Empty dependencies file for fig16_trace.
# This may be replaced when dependencies are built.
