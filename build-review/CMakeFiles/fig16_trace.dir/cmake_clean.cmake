file(REMOVE_RECURSE
  "CMakeFiles/fig16_trace.dir/bench/fig16_trace.cpp.o"
  "CMakeFiles/fig16_trace.dir/bench/fig16_trace.cpp.o.d"
  "fig16_trace"
  "fig16_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
