# Empty compiler generated dependencies file for ba_test.
# This may be replaced when dependencies are built.
