file(REMOVE_RECURSE
  "CMakeFiles/ba_test.dir/tests/ba_test.cpp.o"
  "CMakeFiles/ba_test.dir/tests/ba_test.cpp.o.d"
  "ba_test"
  "ba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
