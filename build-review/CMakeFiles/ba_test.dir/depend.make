# Empty dependencies file for ba_test.
# This may be replaced when dependencies are built.
