file(REMOVE_RECURSE
  "CMakeFiles/scen_bursty_load.dir/bench/scen_bursty_load.cpp.o"
  "CMakeFiles/scen_bursty_load.dir/bench/scen_bursty_load.cpp.o.d"
  "scen_bursty_load"
  "scen_bursty_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scen_bursty_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
