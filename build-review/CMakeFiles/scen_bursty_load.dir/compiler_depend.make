# Empty compiler generated dependencies file for scen_bursty_load.
# This may be replaced when dependencies are built.
