file(REMOVE_RECURSE
  "CMakeFiles/consortium_settlement.dir/examples/consortium_settlement.cpp.o"
  "CMakeFiles/consortium_settlement.dir/examples/consortium_settlement.cpp.o.d"
  "consortium_settlement"
  "consortium_settlement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consortium_settlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
