# Empty dependencies file for consortium_settlement.
# This may be replaced when dependencies are built.
