file(REMOVE_RECURSE
  "CMakeFiles/abl_linking.dir/bench/abl_linking.cpp.o"
  "CMakeFiles/abl_linking.dir/bench/abl_linking.cpp.o.d"
  "abl_linking"
  "abl_linking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_linking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
