# Empty compiler generated dependencies file for abl_linking.
# This may be replaced when dependencies are built.
