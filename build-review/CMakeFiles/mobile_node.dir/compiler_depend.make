# Empty compiler generated dependencies file for mobile_node.
# This may be replaced when dependencies are built.
