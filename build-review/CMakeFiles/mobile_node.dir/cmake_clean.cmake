file(REMOVE_RECURSE
  "CMakeFiles/mobile_node.dir/examples/mobile_node.cpp.o"
  "CMakeFiles/mobile_node.dir/examples/mobile_node.cpp.o.d"
  "mobile_node"
  "mobile_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
