# Empty dependencies file for abl_pacing.
# This may be replaced when dependencies are built.
