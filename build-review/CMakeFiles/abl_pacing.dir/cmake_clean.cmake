file(REMOVE_RECURSE
  "CMakeFiles/abl_pacing.dir/bench/abl_pacing.cpp.o"
  "CMakeFiles/abl_pacing.dir/bench/abl_pacing.cpp.o.d"
  "abl_pacing"
  "abl_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
